"""Tests for steady-state-driven adaptive warm-up.

The hard acceptance contract: a steady-state warm-up policy that
resolves to N cycles produces results **bitwise identical** to a fixed
``warmup=N`` — on the monolithic and interval run paths, and through
every executor backend.
"""

import dataclasses

import pytest

from repro.harness.engine import SimJob, run_jobs
from repro.harness.executors import ProcessExecutor, RemoteExecutor
from repro.harness.runner import (
    BaselineCache,
    run_benchmarks,
    run_benchmarks_intervals,
    single_thread_ipc,
)
from repro.harness.warmup import (
    DEFAULT_MAX_WARMUP,
    DEFAULT_STEADY_REL_TOL,
    DEFAULT_STEADY_WINDOW,
    WarmupPolicy,
    as_warmup_policy,
    parse_warmup_spec,
    warmup_cache_token,
)
from repro.pipeline.config import SMTConfig

CYCLES = 1_500
INTERVAL = 300

#: Settles after exactly ``window`` intervals: any two finite values
#: are within 1000% of their mean (committed counts are non-negative).
EASY = dict(window=2, rel_tol=10.0, max_warmup=1_500)


class TestWarmupPolicy:
    def test_fixed_constructor(self):
        policy = WarmupPolicy.fixed(4_000)
        assert policy.mode == "fixed"
        assert policy.cycles == 4_000
        assert not policy.is_adaptive

    def test_steady_state_constructor_defaults(self):
        policy = WarmupPolicy.steady_state()
        assert policy.is_adaptive
        assert policy.window == DEFAULT_STEADY_WINDOW
        assert policy.rel_tol == DEFAULT_STEADY_REL_TOL
        assert policy.metric == "throughput"
        assert policy.max_warmup == DEFAULT_MAX_WARMUP

    def test_picklable_and_hashable_inside_simjob(self):
        import pickle

        policy = WarmupPolicy.steady_state(window=3)
        job = SimJob(("gzip",), warmup=policy)
        assert pickle.loads(pickle.dumps(job)) == job
        hash(job)  # frozen dataclasses must stay hashable

    @pytest.mark.parametrize("kwargs", [
        dict(mode="sometimes"),
        dict(mode="fixed", cycles=-1),
        dict(mode="steady-state", window=1),
        dict(mode="steady-state", rel_tol=-0.1),
        dict(mode="steady-state", metric="hmean"),
        dict(mode="steady-state", max_warmup=-5),
        dict(mode="steady-state", interval_cycles=0),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            WarmupPolicy(**kwargs)

    def test_as_warmup_policy_accepts_int(self):
        assert as_warmup_policy(700) == WarmupPolicy.fixed(700)
        policy = WarmupPolicy.steady_state()
        assert as_warmup_policy(policy) is policy

    def test_as_warmup_policy_rejects_other_types(self):
        with pytest.raises(TypeError):
            as_warmup_policy("3000")
        with pytest.raises(TypeError):
            as_warmup_policy(True)


class TestParseWarmupSpec:
    def test_plain_count(self):
        assert parse_warmup_spec("3000") == 3000
        assert parse_warmup_spec(" 0 ") == 0

    def test_auto_defaults(self):
        assert parse_warmup_spec("auto") == WarmupPolicy.steady_state()

    def test_auto_with_parameters(self):
        assert parse_warmup_spec("auto:6") == \
            WarmupPolicy.steady_state(window=6)
        assert parse_warmup_spec("auto:6,0.02") == \
            WarmupPolicy.steady_state(window=6, rel_tol=0.02)
        assert parse_warmup_spec("auto:6,0.02,ipc") == \
            WarmupPolicy.steady_state(window=6, rel_tol=0.02, metric="ipc")
        assert parse_warmup_spec("auto:6,0.02,ipc,9000") == \
            WarmupPolicy.steady_state(window=6, rel_tol=0.02, metric="ipc",
                                      max_warmup=9000)

    @pytest.mark.parametrize("text", [
        "fast", "3.5", "-100", "auto:", "auto:,", "auto:abc", "auto:6,xyz",
        "auto:6,0.02,ipc,9000,extra", "autox", "auto:1", "auto:6,-1",
    ])
    def test_malformed_specs_raise(self, text):
        with pytest.raises(ValueError):
            parse_warmup_spec(text)


class TestAdaptiveResolution:
    def test_converges_and_reports(self):
        run = run_benchmarks_intervals(
            ["mcf", "gzip"], "DCRA", cycles=CYCLES,
            warmup=WarmupPolicy.steady_state(**EASY), seed=3,
            interval_cycles=INTERVAL)
        assert run.warmup_converged is True
        assert run.warmup_cycles == 2 * INTERVAL
        assert run.result.warmup_cycles == run.warmup_cycles
        assert len(run.recorder.discarded) == 2

    def test_discarded_indices_count_to_minus_one(self):
        run = run_benchmarks_intervals(
            ["gzip"], "ICOUNT", cycles=CYCLES,
            warmup=WarmupPolicy.steady_state(**EASY), seed=1,
            interval_cycles=INTERVAL)
        assert [s.index for s in run.recorder.discarded] == [-2, -1]
        assert [s.index for s in run.recorder.snapshots] == list(
            range(len(run.recorder.snapshots)))

    def test_auto_resolving_to_n_matches_fixed_n_bitwise(self):
        auto = run_benchmarks_intervals(
            ["mcf", "gzip"], "DCRA", cycles=CYCLES,
            warmup=WarmupPolicy.steady_state(**EASY), seed=3,
            interval_cycles=INTERVAL)
        resolved = auto.warmup_cycles
        fixed_interval = run_benchmarks_intervals(
            ["mcf", "gzip"], "DCRA", cycles=CYCLES, warmup=resolved,
            seed=3, interval_cycles=INTERVAL)
        fixed_mono = run_benchmarks(
            ["mcf", "gzip"], "DCRA", cycles=CYCLES, warmup=resolved, seed=3)
        auto_mono = run_benchmarks(
            ["mcf", "gzip"], "DCRA", cycles=CYCLES,
            warmup=WarmupPolicy.steady_state(
                interval_cycles=INTERVAL, **EASY), seed=3)
        assert auto.result == fixed_interval.result
        assert auto.result == fixed_mono
        assert auto_mono == fixed_mono

    def test_max_warmup_cap(self):
        """A window the run can never fill warms up exactly max_warmup."""
        policy = WarmupPolicy.steady_state(window=5, rel_tol=0.05,
                                           max_warmup=1_100)
        run = run_benchmarks_intervals(
            ["gzip"], "ICOUNT", cycles=800, warmup=policy, seed=1,
            interval_cycles=500)
        assert run.warmup_converged is False
        assert run.warmup_cycles == 1_100
        # The cap is honoured exactly: the last chunk is short.
        assert [s.cycles for s in run.recorder.discarded] == [500, 500, 100]
        # Cap-hit resolution is still bitwise-equivalent to fixed.
        fixed = run_benchmarks(["gzip"], "ICOUNT", cycles=800,
                               warmup=1_100, seed=1)
        assert run.result == fixed

    def test_per_thread_ipc_metric(self):
        policy = WarmupPolicy.steady_state(window=2, rel_tol=10.0,
                                           metric="ipc", max_warmup=1_500)
        run = run_benchmarks_intervals(
            ["mcf", "gzip"], "DCRA", cycles=CYCLES, warmup=policy, seed=3,
            interval_cycles=INTERVAL)
        assert run.warmup_converged is True
        assert run.warmup_cycles == 2 * INTERVAL

    def test_adaptive_zero_cap_equals_no_warmup(self):
        policy = WarmupPolicy.steady_state(window=2, max_warmup=0)
        auto = run_benchmarks(["gzip"], "ICOUNT", cycles=CYCLES,
                              warmup=policy, seed=1)
        fixed = run_benchmarks(["gzip"], "ICOUNT", cycles=CYCLES,
                               warmup=0, seed=1)
        assert auto == fixed
        assert auto.warmup_cycles == 0

    def test_resolution_is_workload_dependent(self):
        """Different workloads may resolve different warm-up lengths —
        the whole point of steady-state warm-up.  Pin that resolution
        reacts to the series: a tolerance of zero cannot settle (equal
        integer commit counts aside) while a huge one settles at the
        window."""
        loose = run_benchmarks_intervals(
            ["mcf"], "ICOUNT", cycles=600,
            warmup=WarmupPolicy.steady_state(window=2, rel_tol=10.0,
                                             max_warmup=1_000),
            seed=1, interval_cycles=200)
        tight = run_benchmarks_intervals(
            ["mcf"], "ICOUNT", cycles=600,
            warmup=WarmupPolicy.steady_state(window=2, rel_tol=1e-12,
                                             max_warmup=1_000),
            seed=1, interval_cycles=200)
        assert loose.warmup_cycles <= tight.warmup_cycles


class TestFixedWarmupEdgeCases:
    def test_zero_warmup_with_warmup_as_intervals(self):
        run = run_benchmarks_intervals(
            ["gzip"], "ICOUNT", cycles=CYCLES, warmup=0, seed=1,
            interval_cycles=INTERVAL, warmup_as_intervals=True)
        mono = run_benchmarks(["gzip"], "ICOUNT", cycles=CYCLES,
                              warmup=0, seed=1)
        assert run.result == mono
        assert run.recorder.discarded == []
        assert run.warmup_cycles == 0

    def test_warmup_not_multiple_of_interval(self):
        """The ceiling-division path: 700-cycle warm-up in 500-cycle
        chunks discards two intervals of 500 and 200 cycles."""
        as_intervals = run_benchmarks_intervals(
            ["mcf"], "ICOUNT", cycles=1_000, warmup=700, seed=2,
            interval_cycles=500, warmup_as_intervals=True)
        assert [s.cycles for s in as_intervals.recorder.discarded] == \
            [500, 200]
        assert [s.index for s in as_intervals.recorder.discarded] == [-2, -1]
        via_reset = run_benchmarks_intervals(
            ["mcf"], "ICOUNT", cycles=1_000, warmup=700, seed=2,
            interval_cycles=500)
        assert as_intervals.result == via_reset.result

    def test_fixed_policy_equals_plain_int(self):
        a = run_benchmarks(["gzip"], "ICOUNT", cycles=CYCLES,
                           warmup=400, seed=1)
        b = run_benchmarks(["gzip"], "ICOUNT", cycles=CYCLES,
                           warmup=WarmupPolicy.fixed(400), seed=1)
        assert a == b

    def test_fixed_runs_record_warmup(self):
        result = run_benchmarks(["gzip"], "ICOUNT", cycles=CYCLES,
                                warmup=400, seed=1)
        assert result.warmup_cycles == 400


class TestExecutorEquivalence:
    """--warmup auto must be bitwise-identical on every backend."""

    @staticmethod
    def jobs():
        policy = WarmupPolicy.steady_state(window=2, rel_tol=10.0,
                                           max_warmup=600)
        return [
            SimJob(("gzip",), "ICOUNT", None, 800, policy, seed=3),
            SimJob(("mcf", "gzip"), "DCRA", None, 800, policy, seed=3,
                   interval_cycles=200),
            SimJob(("twolf",), "FLUSH++", None, 800,
                   WarmupPolicy.steady_state(window=3, rel_tol=10.0,
                                             max_warmup=700,
                                             interval_cycles=250),
                   seed=5),
        ]

    @pytest.fixture(scope="class")
    def reference(self):
        return run_jobs(self.jobs(), max_workers=1)

    def test_reference_resolved_adaptively(self, reference):
        assert [r.warmup_cycles for r in reference] == [600, 400, 700]

    def test_serial_executor(self, reference):
        assert run_jobs(self.jobs(), executor="serial") == reference

    def test_process_executor(self, reference):
        with ProcessExecutor(max_workers=2) as executor:
            assert run_jobs(self.jobs(), executor=executor) == reference

    def test_remote_executor(self, reference):
        with RemoteExecutor(spawn_workers=2, timeout=120.0) as executor:
            assert run_jobs(self.jobs(), executor=executor) == reference


class TestBaselineCacheKeys:
    def test_fixed_token_matches_plain_int(self):
        assert warmup_cache_token(3000) == \
            warmup_cache_token(WarmupPolicy.fixed(3000))

    def test_adaptive_token_never_collides_with_fixed(self):
        for cycles in (0, 3000, DEFAULT_MAX_WARMUP):
            assert warmup_cache_token(cycles) != \
                warmup_cache_token(WarmupPolicy.steady_state())

    def test_adaptive_tokens_distinguish_parameters(self):
        tokens = {
            warmup_cache_token(WarmupPolicy.steady_state()),
            warmup_cache_token(WarmupPolicy.steady_state(window=6)),
            warmup_cache_token(WarmupPolicy.steady_state(rel_tol=0.02)),
            warmup_cache_token(WarmupPolicy.steady_state(metric="ipc")),
            warmup_cache_token(WarmupPolicy.steady_state(max_warmup=9000)),
            warmup_cache_token(
                WarmupPolicy.steady_state(interval_cycles=1000)),
        }
        assert len(tokens) == 6

    def test_cache_entries_do_not_collide(self):
        """An adaptive baseline and a fixed one of the same nominal spec
        are distinct cache entries (the cache-version-2 contract)."""
        cache = BaselineCache()
        config = SMTConfig()
        policy = WarmupPolicy.steady_state(max_warmup=300)
        cache.put("gzip", config, 1000, 300, 1, ipc=1.0)
        cache.put("gzip", config, 1000, policy, 1, ipc=2.0)
        assert cache.get("gzip", config, 1000, 300, 1) == 1.0
        assert cache.get("gzip", config, 1000, policy, 1) == 2.0

    def test_single_thread_ipc_with_adaptive_policy_memoises(self):
        policy = WarmupPolicy.steady_state(window=2, rel_tol=10.0,
                                           max_warmup=400)
        first = single_thread_ipc("gzip", cycles=800, warmup=policy, seed=11)
        second = single_thread_ipc("gzip", cycles=800, warmup=policy,
                                   seed=11)
        assert first == second
        fixed = single_thread_ipc("gzip", cycles=800, warmup=400, seed=11)
        # Same resolved length, separate cache entries, same physics.
        assert fixed == first


class TestReplaceSemantics:
    def test_simjob_replace_keeps_warmup_policy(self):
        policy = WarmupPolicy.steady_state(window=3)
        job = SimJob(("gzip",), warmup=policy)
        assert dataclasses.replace(job, seed=9).warmup is policy
