"""Unit tests for the MSHR file."""

import pytest

from repro.mem.mshr import MSHRFile


class TestAllocation:
    def test_allocate_and_lookup(self):
        mshrs = MSHRFile(4)
        entry = mshrs.allocate(0x1000, fill_cycle=50, is_l2_miss=True, tid=1)
        assert mshrs.lookup(0x1000) is entry
        assert entry.tid == 1
        assert entry.is_l2_miss

    def test_double_allocate_rejected(self):
        mshrs = MSHRFile(4)
        mshrs.allocate(0x1000, 50, False, 0)
        with pytest.raises(RuntimeError):
            mshrs.allocate(0x1000, 60, False, 0)

    def test_capacity(self):
        mshrs = MSHRFile(2)
        mshrs.allocate(0x0, 10, False, 0)
        mshrs.allocate(0x40, 10, False, 0)
        assert mshrs.full()
        with pytest.raises(RuntimeError):
            mshrs.allocate(0x80, 10, False, 0)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            MSHRFile(0)


class TestMergeAndFill:
    def test_merge_invokes_waiters_on_pop(self):
        mshrs = MSHRFile(4)
        entry = mshrs.allocate(0x1000, 30, True, 0)
        seen = []
        mshrs.merge(entry, seen.append)
        mshrs.merge(entry, seen.append)
        assert mshrs.merges == 2
        ready = mshrs.pop_ready(30)
        assert ready == [entry]
        for waiter in ready[0].waiters:
            waiter(30)
        assert seen == [30, 30]

    def test_pop_ready_only_due(self):
        mshrs = MSHRFile(4)
        mshrs.allocate(0x0, 10, False, 0)
        mshrs.allocate(0x40, 20, False, 0)
        assert len(mshrs.pop_ready(10)) == 1
        assert mshrs.outstanding() == 1

    def test_pop_ready_removes_entry(self):
        mshrs = MSHRFile(4)
        mshrs.allocate(0x0, 10, False, 0)
        mshrs.pop_ready(10)
        assert mshrs.lookup(0x0) is None


class TestOverlapAccounting:
    def test_outstanding_l2_filtering(self):
        mshrs = MSHRFile(8)
        mshrs.allocate(0x0, 99, True, 0)
        mshrs.allocate(0x40, 99, False, 0)
        mshrs.allocate(0x80, 99, True, 1)
        assert mshrs.outstanding_l2() == 2
        assert mshrs.outstanding_l2(tid=0) == 1
        assert mshrs.outstanding_l2(tid=1) == 1

    def test_overlap_sampling_ignores_idle_cycles(self):
        mshrs = MSHRFile(8)
        mshrs.sample_overlap()          # nothing outstanding: not sampled
        mshrs.allocate(0x0, 99, True, 0)
        mshrs.allocate(0x40, 99, True, 0)
        mshrs.sample_overlap()
        assert mshrs.average_l2_overlap() == pytest.approx(2.0)

    def test_average_zero_when_never_sampled(self):
        assert MSHRFile(2).average_l2_overlap() == 0.0
