"""Unit tests for DCRA thread classification (phases and activity)."""

import pytest

from repro.core.classification import ActivityTracker, ThreadClass, classify
from repro.pipeline.resources import Resource


class TestThreadClass:
    def test_classify_combinations(self):
        assert classify(slow=True, active=True) == ThreadClass.SLOW_ACTIVE
        assert classify(slow=True, active=False) == ThreadClass.SLOW_INACTIVE
        assert classify(slow=False, active=True) == ThreadClass.FAST_ACTIVE
        assert classify(slow=False, active=False) == ThreadClass.FAST_INACTIVE

    def test_predicates(self):
        assert ThreadClass.SLOW_ACTIVE.is_slow
        assert ThreadClass.SLOW_ACTIVE.is_active
        assert not ThreadClass.FAST_INACTIVE.is_slow
        assert not ThreadClass.FAST_INACTIVE.is_active

    def test_paper_abbreviations(self):
        assert ThreadClass.FAST_ACTIVE.value == "FA"
        assert ThreadClass.SLOW_INACTIVE.value == "SI"


class TestActivityTracker:
    def test_starts_active(self):
        tracker = ActivityTracker(2, window=4)
        assert tracker.is_active(Resource.IQ_FP, 0)
        assert tracker.is_active(Resource.REG_FP, 1)

    def test_integer_resources_always_active(self):
        tracker = ActivityTracker(1, window=1)
        for _ in range(5):
            tracker.tick()
        assert tracker.is_active(Resource.IQ_INT, 0)
        assert tracker.is_active(Resource.REG_INT, 0)
        assert tracker.is_active(Resource.IQ_LS, 0)

    def test_decay_to_inactive(self):
        tracker = ActivityTracker(1, window=3)
        for _ in range(3):
            tracker.tick()
        assert not tracker.is_active(Resource.IQ_FP, 0)

    def test_use_resets_counter(self):
        tracker = ActivityTracker(1, window=3)
        tracker.tick()
        tracker.tick()
        tracker.note_use(Resource.IQ_FP, 0)
        tracker.tick()
        assert tracker.counter(Resource.IQ_FP, 0) == 3
        assert tracker.is_active(Resource.IQ_FP, 0)

    def test_activity_is_per_resource(self):
        tracker = ActivityTracker(1, window=2)
        tracker.note_use(Resource.IQ_FP, 0)
        tracker.tick()
        tracker.tick()
        # REG_FP was never used: inactive.  IQ_FP was used one tick ago.
        assert tracker.is_active(Resource.IQ_FP, 0)
        assert not tracker.is_active(Resource.REG_FP, 0)

    def test_activity_is_per_thread(self):
        tracker = ActivityTracker(2, window=2)
        tracker.note_use(Resource.IQ_FP, 0)
        tracker.tick()
        tracker.tick()
        tracker.tick()
        assert not tracker.is_active(Resource.IQ_FP, 0)
        assert not tracker.is_active(Resource.IQ_FP, 1)

    def test_reuse_reactivates(self):
        tracker = ActivityTracker(1, window=2)
        for _ in range(3):
            tracker.tick()
        assert not tracker.is_active(Resource.IQ_FP, 0)
        tracker.note_use(Resource.IQ_FP, 0)
        tracker.tick()
        assert tracker.is_active(Resource.IQ_FP, 0)

    def test_active_threads_helper(self):
        tracker = ActivityTracker(3, window=1)
        tracker.note_use(Resource.IQ_FP, 1)
        tracker.tick()
        assert tracker.active_threads(Resource.IQ_FP, range(3)) == [1]
        assert tracker.active_threads(Resource.IQ_INT, range(3)) == [0, 1, 2]

    def test_counter_for_int_resource_raises(self):
        tracker = ActivityTracker(1)
        with pytest.raises(ValueError):
            tracker.counter(Resource.IQ_INT, 0)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            ActivityTracker(1, window=0)

    def test_paper_default_window(self):
        assert ActivityTracker(1).window == 256
