"""Unit tests for per-thread pipeline state (ThreadContext)."""

from repro.isa.instruction import MicroOp, OpClass, StaticOp
from repro.pipeline.thread import ThreadContext, ThreadStats
from repro.trace.generator import SyntheticTraceGenerator, TraceBuffer
from repro.trace.profiles import get_profile


def make_context(tid=0, benchmark="gzip"):
    trace = TraceBuffer(SyntheticTraceGenerator(get_profile(benchmark),
                                                seed=5, tid=tid))
    return ThreadContext(tid, trace, fetch_queue_size=16)


def micro(context, index, wrong_path=False):
    static = context.trace.get(index) if not wrong_path else \
        context.trace.wrong_path_op(0x1000)
    return MicroOp(static, context.tid, index, -1 if wrong_path else index,
                   wrong_path, fetch_cycle=0)


class TestBasics:
    def test_initial_state(self):
        context = make_context()
        assert context.fetch_index == 0
        assert not context.in_wrong_path
        assert context.fetch_queue_occupancy() == 0
        assert not context.is_slow()

    def test_is_slow_tracks_pending_l1(self):
        context = make_context()
        context.pending_l1d = 2
        assert context.is_slow()
        context.pending_l1d = 0
        assert not context.is_slow()

    def test_stats_ipc(self):
        stats = ThreadStats(committed=500)
        assert stats.ipc(1000) == 0.5
        assert stats.ipc(0) == 0.0


class TestRewind:
    def test_rewind_resets_wrong_path_state(self):
        context = make_context()
        context.in_wrong_path = True
        context.wrong_path_pc = 0x999
        context.mispredict_op = micro(context, 3)
        context.rewind_to(4, 0x4000)
        assert context.fetch_index == 4
        assert not context.in_wrong_path
        assert context.mispredict_op is None


class TestPruning:
    def test_prune_keeps_rob_window(self):
        context = make_context()
        for index in range(50):
            context.trace.get(index)
        context.rob.append(micro(context, 10))
        context.fetch_index = 50
        context.prune_trace()
        # Index 10 is in flight: it (and successors) must stay readable.
        assert context.trace.get(10) is not None

    def test_prune_respects_fetch_queue_head(self):
        context = make_context()
        for index in range(50):
            context.trace.get(index)
        context.fetch_queue.append(micro(context, 5))
        context.fetch_index = 50
        context.prune_trace()
        assert context.trace.get(5) is not None

    def test_prune_ignores_wrong_path_entries(self):
        context = make_context()
        for index in range(50):
            context.trace.get(index)
        context.fetch_queue.append(micro(context, 0, wrong_path=True))
        context.fetch_queue.append(micro(context, 30))
        context.fetch_index = 50
        context.prune_trace()
        assert context.trace.get(30) is not None

    def test_prune_drops_dead_history(self):
        context = make_context()
        for index in range(64):
            context.trace.get(index)
        context.fetch_index = 60
        context.prune_trace()
        # Everything below the fetch index is gone (nothing in flight).
        assert len(context.trace._ops) <= 4
