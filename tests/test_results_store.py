"""Content-addressed result store: keys, round-trips, reuse modes."""

import dataclasses
import json

import pytest

from repro.harness import results as results_mod
from repro.harness.engine import SimJob, run_job, run_jobs, run_jobs_streaming
from repro.harness.executors import SerialExecutor
from repro.harness.results import (
    ResultStore,
    ResultStoreMiss,
    interval_run_from_payload,
    interval_run_to_payload,
    job_token,
    normalize_reuse,
    policy_token,
    result_from_payload,
    result_to_payload,
    timeline_from_payload,
    timeline_to_payload,
)
from repro.harness.runner import run_benchmarks_intervals
from repro.harness.warmup import WarmupPolicy
from repro.pipeline.config import SMTConfig

CYCLES = 1_500
WARMUP = 300

JOB = SimJob(("gzip", "twolf"), "DCRA", None, CYCLES, WARMUP, seed=3)


class TestKeys:
    def test_config_none_keys_like_table2_baseline(self):
        explicit = dataclasses.replace(JOB, config=SMTConfig())
        assert job_token(JOB) == job_token(explicit)

    def test_tag_is_not_identity(self):
        assert job_token(JOB) == job_token(
            dataclasses.replace(JOB, tag="some-label"))

    def test_every_real_input_changes_the_token(self):
        tokens = {job_token(JOB)}
        variants = [
            dataclasses.replace(JOB, benchmarks=("gzip", "mcf")),
            dataclasses.replace(JOB, policy="ICOUNT"),
            dataclasses.replace(JOB, config=SMTConfig(rob_size=64)),
            dataclasses.replace(JOB, cycles=CYCLES + 1),
            dataclasses.replace(JOB, warmup=WARMUP + 1),
            dataclasses.replace(JOB, seed=4),
            dataclasses.replace(JOB, interval_cycles=500),
            dataclasses.replace(
                JOB, warmup=WarmupPolicy.steady_state(max_warmup=WARMUP)),
        ]
        for variant in variants:
            tokens.add(job_token(variant))
        assert len(tokens) == len(variants) + 1

    def test_policy_token_sorts_kwargs(self):
        assert policy_token(("DCRA", {"a": 1, "b": 2})) == \
            policy_token(("DCRA", {"b": 2, "a": 1}))

    def test_fixed_warmup_policy_keys_like_plain_int(self):
        assert job_token(JOB) == job_token(
            dataclasses.replace(JOB, warmup=WarmupPolicy.fixed(WARMUP)))

    def test_normalize_reuse_rejects_unknown(self):
        assert normalize_reuse(None) == "off"
        with pytest.raises(ValueError, match="unknown reuse mode"):
            normalize_reuse("always")


class TestPayloadRoundTrips:
    def test_result_round_trip_is_exact(self):
        result = run_job(JOB)
        clone = result_from_payload(
            json.loads(json.dumps(result_to_payload(result))))
        assert clone == result

    def test_interval_run_round_trip_is_exact(self):
        run = run_benchmarks_intervals(
            ["mcf", "gzip"], "DCRA", None, CYCLES, WARMUP, seed=5,
            interval_cycles=500, warmup_as_intervals=True)
        clone = interval_run_from_payload(
            json.loads(json.dumps(interval_run_to_payload(run))))
        assert clone.result == run.result
        assert clone.interval_cycles == run.interval_cycles
        assert clone.warmup_cycles == run.warmup_cycles
        assert clone.warmup_converged == run.warmup_converged
        assert clone.recorder.snapshots == run.recorder.snapshots
        assert clone.recorder.discarded == run.recorder.discarded

    def test_phase_timeline_round_trip_is_exact(self):
        run = run_benchmarks_intervals(
            ["mcf", "twolf"], "DCRA", None, CYCLES, WARMUP, seed=5,
            interval_cycles=500)
        timeline = run.recorder.phase_timeline()
        clone = timeline_from_payload(
            json.loads(json.dumps(timeline_to_payload(timeline))))
        assert clone == timeline


class TestStore:
    def test_miss_then_hit(self):
        store = ResultStore()
        assert store.get(JOB) is None
        result = run_job(JOB)
        store.put(JOB, result)
        assert store.get(JOB) == result
        assert store.stats.hits == 1
        assert store.stats.misses == 1
        assert store.stats.stores == 1

    def test_disk_hit_across_instances(self):
        store = ResultStore()
        result = run_job(JOB)
        store.put(JOB, result)
        fresh = ResultStore()  # no memory, same REPRO_CACHE_DIR
        assert fresh.get(JOB) == result

    def test_source_edit_invalidates(self, monkeypatch):
        store = ResultStore()
        store.put(JOB, run_job(JOB))
        monkeypatch.setattr(results_mod, "_fingerprint_cache",
                            "1111other1111111")
        assert ResultStore().get(JOB) is None

    def test_require_raises_on_cold_store(self):
        with pytest.raises(ResultStoreMiss, match="no stored result"):
            ResultStore().require(JOB)

    def test_kinds_key_separately(self):
        store = ResultStore()
        store.put(JOB, run_job(JOB), "result")
        assert store.get(JOB, "phase_timeline") is None

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown payload kind"):
            ResultStore().get(JOB, "bogus")

    def test_corrupt_entry_degrades_to_miss(self):
        store = ResultStore()
        store.put(JOB, run_job(JOB))
        key = store.key_for(JOB)
        path = store.directory() / f"{key}.json"
        path.write_text("{not json")
        assert ResultStore().get(JOB) is None

    def test_valid_json_with_broken_payload_degrades_to_miss(self):
        """A decodable file whose payload shape is wrong is a miss, not
        a crash (e.g. hand-edited timeline entries of bad arity)."""
        store = ResultStore()
        key = store.key_for(JOB, "phase_timeline")
        store.directory().mkdir(parents=True, exist_ok=True)
        (store.directory() / f"{key}.json").write_text(json.dumps({
            "version": 1, "kind": "phase_timeline", "job": "x",
            "data": {"num_threads": 2, "entries": [[1, 2, 3]]},
        }))
        assert ResultStore().get(JOB, "phase_timeline") is None


class TestEngineReuse:
    JOBS = [SimJob(("gzip",), "ICOUNT", None, CYCLES, WARMUP, seed=s)
            for s in (1, 2, 3)]

    def test_auto_reuse_is_bitwise_identical(self):
        store = ResultStore()
        cold = run_jobs(self.JOBS, reuse="auto", store=store)
        assert store.stats.stores == len(self.JOBS)
        warm = run_jobs(self.JOBS, reuse="auto", store=store)
        assert warm == cold
        assert store.stats.stores == len(self.JOBS)  # nothing recomputed

    def test_require_runs_zero_simulations(self, monkeypatch):
        store = ResultStore()
        cold = run_jobs(self.JOBS, reuse="auto", store=store)

        from repro.harness import engine

        def boom(job):
            raise AssertionError("simulated despite reuse='require'")

        monkeypatch.setattr(engine, "run_job", boom)
        assert run_jobs(self.JOBS, reuse="require", store=store) == cold

    def test_require_raises_on_missing_job(self):
        store = ResultStore()
        run_jobs(self.JOBS[:2], reuse="auto", store=store)
        with pytest.raises(ResultStoreMiss):
            run_jobs(self.JOBS, reuse="require", store=store)

    def test_partial_reuse_fills_the_gaps(self):
        store = ResultStore()
        cold = run_jobs(self.JOBS, reuse="off")
        run_jobs(self.JOBS[1:2], reuse="auto", store=store)
        mixed = run_jobs(self.JOBS, reuse="auto", store=store)
        assert mixed == cold
        assert store.stats.stores == len(self.JOBS)

    def test_streaming_reuse_reassembles_identically(self):
        store = ResultStore()
        cold = run_jobs(self.JOBS, reuse="off")
        run_jobs(self.JOBS[:1], reuse="auto", store=store)
        streamed = [None] * len(self.JOBS)
        for index, result in run_jobs_streaming(self.JOBS, reuse="auto",
                                                store=store):
            streamed[index] = result
        assert streamed == cold

    def test_reuse_across_executors(self):
        """A store warmed on one backend serves every other backend."""
        store = ResultStore()
        with SerialExecutor() as serial:
            cold = run_jobs(self.JOBS, executor=serial, reuse="auto",
                            store=store)
        # 'require' proves no simulation can happen, whatever the
        # backend: hits are resolved before any dispatch.
        from repro.harness.executors import ProcessExecutor, RemoteExecutor

        for backend_factory in (SerialExecutor,
                                lambda: ProcessExecutor(2),
                                lambda: RemoteExecutor(spawn_workers=2)):
            with backend_factory() as backend:
                warm = run_jobs(self.JOBS, 2, backend, reuse="require",
                                store=store)
            assert warm == cold
