"""The numpy gate: clear failures everywhere, never silent degradation.

These tests run with or without numpy installed — they simulate its
absence by poisoning ``sys.modules`` — so the gating behaviour is
pinned in both the tier-1 (numpy-free) and the extras environment.
"""

import sys

import pytest

from repro import __main__ as cli
from repro.harness.engine import SimJob, run_job, run_job_backend, run_jobs


@pytest.fixture
def no_numpy(monkeypatch):
    """Make ``import numpy`` (and a cached repro.batch) fail."""
    for name in [m for m in sys.modules
                 if m == "repro.batch" or m.startswith("repro.batch.")]:
        monkeypatch.delitem(sys.modules, name)
    monkeypatch.setitem(sys.modules, "numpy", None)


def test_import_without_numpy_raises_install_hint(no_numpy):
    with pytest.raises(ImportError, match=r"repro-dcra\[batch\]"):
        import repro.batch  # noqa: F401


def test_run_jobs_batched_without_numpy_raises(no_numpy):
    job = SimJob(("gzip",), "ICOUNT", cycles=100, warmup=0)
    with pytest.raises(ImportError, match="numpy"):
        run_jobs([job], backend="batched")


def test_cli_backend_batched_degrades_loudly(no_numpy, capsys):
    """``--backend batched`` without numpy exits with the install hint
    instead of silently running scalar."""
    with pytest.raises(SystemExit) as excinfo:
        cli.main(["run", "gzip", "--cycles", "100", "--warmup", "0",
                  "--backend", "batched"])
    message = str(excinfo.value)
    assert "batched" in message and "numpy" in message
    # Nothing was simulated before the failure.
    assert capsys.readouterr().out == ""


def test_cli_backend_scalar_unaffected_by_missing_numpy(no_numpy, capsys):
    assert cli.main(["run", "gzip", "--cycles", "100", "--warmup", "0",
                     "--backend", "scalar"]) == 0
    assert "gzip" in capsys.readouterr().out


def test_scalar_engine_never_imports_batch(no_numpy):
    job = SimJob(("gzip",), "ICOUNT", cycles=100, warmup=0)
    results = run_jobs([job])
    assert len(results) == 1
    assert "repro.batch" not in sys.modules


# -- the vectorized backend under the same gate -----------------------------

def test_run_jobs_vectorized_without_numpy_raises(no_numpy):
    job = SimJob(("gzip",), "ICOUNT", cycles=100, warmup=0)
    with pytest.raises(ImportError, match="numpy"):
        run_jobs([job], backend="vectorized")


def test_run_job_backend_vectorized_degrades_loudly(no_numpy):
    """The broker worker path: a vectorized request on a numpy-less
    worker runs scalar with a RuntimeWarning and says so in the reply
    metadata — honest bitwise tagging, never a silent downgrade."""
    import pickle

    job = SimJob(("gzip",), "ICOUNT", cycles=100, warmup=0, seed=5)
    with pytest.warns(RuntimeWarning, match="numpy is not"):
        result, meta = run_job_backend((job, "vectorized"))
    assert meta["backend"] == "vectorized"
    assert meta["executed_backend"] == "scalar"
    assert meta["equivalence"] == "bitwise"
    assert "numpy" in meta["fallback_reason"]
    assert pickle.dumps(result) == pickle.dumps(run_job(job))
