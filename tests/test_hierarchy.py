"""Unit tests for the composed memory hierarchy (timing + content)."""

import pytest

from repro.mem.hierarchy import MemoryHierarchy


def make_hierarchy(**kwargs):
    defaults = dict(
        num_threads=2,
        l1i_size=4 * 1024,
        l1d_size=4 * 1024,
        l1_assoc=2,
        l2_size=32 * 1024,
        l2_assoc=4,
        l1_latency=1,
        l2_latency=10,
        memory_latency=100,
        tlb_entries=8,
        tlb_penalty=20,
        mshr_capacity=4,
    )
    defaults.update(kwargs)
    return MemoryHierarchy(**defaults)


def collect_waiter(sink):
    def waiter(cycle):
        sink.append(cycle)
    return waiter


class TestLoadTiming:
    def test_l1_hit_latency(self):
        hierarchy = make_hierarchy()
        hierarchy.l1d.fill(0x1000)
        hierarchy.dtlb.access(0x1000)
        result = hierarchy.access_load(0, 0x1000, 100, lambda c: None)
        assert result.complete_cycle == 101
        assert not result.l1_miss

    def test_l2_hit_fill_time(self):
        hierarchy = make_hierarchy()
        hierarchy.l2.fill(0x2000)
        hierarchy.dtlb.access(0x2000)
        fills = []
        result = hierarchy.access_load(0, 0x2000, 100, collect_waiter(fills))
        assert result.l1_miss and not result.l2_miss
        assert result.complete_cycle is None
        for cycle in range(100, 112):
            hierarchy.tick(cycle)
        assert fills == [111]  # 100 + 1 (L1) + 10 (L2)

    def test_memory_fill_time_and_detection(self):
        hierarchy = make_hierarchy()
        hierarchy.dtlb.access(0x3000)
        fills = []
        result = hierarchy.access_load(0, 0x3000, 50, collect_waiter(fills))
        assert result.l2_miss
        assert result.l2_detect_cycle == 60  # issue + L2 latency
        for cycle in range(50, 162):
            hierarchy.tick(cycle)
        assert fills == [161]  # 50 + 1 + 10 + 100

    def test_tlb_miss_penalty_added(self):
        hierarchy = make_hierarchy()
        hierarchy.l1d.fill(0x4000)
        result = hierarchy.access_load(0, 0x4000, 10, lambda c: None)
        assert result.tlb_miss
        assert result.complete_cycle == 10 + 1 + 20

    def test_perfect_dl1_always_hits(self):
        hierarchy = make_hierarchy(perfect_dl1=True)
        result = hierarchy.access_load(0, 0x9999999, 7, lambda c: None)
        assert result.complete_cycle == 8
        assert not result.l1_miss


class TestMissMerging:
    def test_second_load_merges(self):
        hierarchy = make_hierarchy()
        hierarchy.dtlb.access(0x5000)
        first, second = [], []
        r1 = hierarchy.access_load(0, 0x5000, 10, collect_waiter(first))
        r2 = hierarchy.access_load(1, 0x5010, 12, collect_waiter(second))
        assert r1.l2_miss and r2.l2_miss
        assert hierarchy.mshrs.merges == 1
        fill_cycle = 10 + 1 + 10 + 100
        for cycle in range(10, fill_cycle + 1):
            hierarchy.tick(cycle)
        assert first == [fill_cycle]
        assert second == [fill_cycle]

    def test_mshr_full_returns_retry(self):
        hierarchy = make_hierarchy(mshr_capacity=1)
        hierarchy.dtlb.access(0)
        hierarchy.access_load(0, 0x0, 1, lambda c: None)
        result = hierarchy.access_load(0, 0x10000, 1, lambda c: None)
        assert result.retry
        # retry accesses must not pollute statistics
        assert hierarchy.thread_stats[0].l1d_accesses == 1


class TestStores:
    def test_store_hit_no_mshr(self):
        hierarchy = make_hierarchy()
        hierarchy.l1d.fill(0x100)
        hierarchy.access_store(0, 0x100, 5)
        assert hierarchy.mshrs.outstanding() == 0

    def test_store_miss_allocates_fill(self):
        hierarchy = make_hierarchy()
        hierarchy.access_store(0, 0x6000, 5)
        assert hierarchy.mshrs.outstanding() == 1
        assert hierarchy.thread_stats[0].store_l2_misses == 1

    def test_store_misses_not_counted_as_load_misses(self):
        hierarchy = make_hierarchy()
        hierarchy.access_store(0, 0x6000, 5)
        assert hierarchy.thread_stats[0].l2_data_misses == 0


class TestIFetch:
    def test_icache_hit(self):
        hierarchy = make_hierarchy()
        hierarchy.l1i.fill(0x7000)
        assert hierarchy.access_ifetch(0, 0x7000, 3) is None

    def test_icache_miss_returns_fill_cycle(self):
        hierarchy = make_hierarchy()
        ready = hierarchy.access_ifetch(0, 0x8000, 3)
        assert ready == 3 + 1 + 10 + 100
        for cycle in range(3, ready + 1):
            hierarchy.tick(cycle)
        assert hierarchy.l1i.contains(0x8000)
        assert not hierarchy.l1d.contains(0x8000)

    def test_icache_miss_merges_with_in_flight(self):
        hierarchy = make_hierarchy()
        first = hierarchy.access_ifetch(0, 0x8000, 3)
        second = hierarchy.access_ifetch(1, 0x8000, 4)
        assert second == first


class TestPrewarm:
    def test_prewarm_hot_fills_l1d_l2_tlb(self):
        hierarchy = make_hierarchy()
        hierarchy.prewarm(0, 0x10000, 2048, "hot")
        assert hierarchy.l1d.contains(0x10000)
        assert hierarchy.l2.contains(0x10000)
        assert hierarchy.dtlb.access(0x10000)

    def test_prewarm_code_fills_l1i(self):
        hierarchy = make_hierarchy()
        hierarchy.prewarm(0, 0x20000, 1024, "code")
        assert hierarchy.l1i.contains(0x20000)
        assert not hierarchy.l1d.contains(0x20000)

    def test_prewarm_warm_fills_l2_only(self):
        hierarchy = make_hierarchy()
        hierarchy.prewarm(0, 0x30000, 1024, "warm")
        assert hierarchy.l2.contains(0x30000)
        assert not hierarchy.l1d.contains(0x30000)

    def test_prewarm_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            make_hierarchy().prewarm(0, 0, 64, "lukewarm")


class TestInclusionPolicy:
    def test_non_inclusive_keeps_l1_lines(self):
        hierarchy = make_hierarchy()
        hierarchy.l1d.fill(0x0)
        # Thrash L2 far beyond capacity; L1 copy must survive.
        for i in range(hierarchy.l2.num_sets * hierarchy.l2.assoc * 2):
            hierarchy.l2.fill(0x100000 + i * 64)
        assert hierarchy.l1d.contains(0x0)

    def test_missrate_statistic(self):
        hierarchy = make_hierarchy()
        hierarchy.dtlb.access(0x0)
        hierarchy.access_load(0, 0x0, 1, lambda c: None)  # memory miss
        stats = hierarchy.thread_stats[0]
        assert stats.l2_missrate_pct() == pytest.approx(100.0)
