"""Unit tests for throughput/fairness metrics and result containers."""

import pytest

from repro.metrics.stats import (
    SimulationResult,
    ThreadResult,
    collect_result,
    hmean,
    hmean_speedup,
    throughput,
    weighted_speedup,
)
from repro.pipeline.config import SMTConfig
from repro.pipeline.processor import SMTProcessor
from repro.policies.basic import IcountPolicy
from repro.trace.profiles import get_profile


class TestScalarMetrics:
    def test_throughput_is_sum(self):
        assert throughput([1.0, 2.0, 0.5]) == 3.5

    def test_hmean_balanced(self):
        assert hmean([0.5, 0.5]) == pytest.approx(0.5)

    def test_hmean_punishes_imbalance(self):
        balanced = hmean([0.5, 0.5])
        skewed = hmean([0.9, 0.1])
        assert skewed < balanced

    def test_hmean_zero_on_starved_thread(self):
        assert hmean([1.0, 0.0]) == 0.0

    def test_hmean_rejects_empty_and_negative(self):
        with pytest.raises(ValueError):
            hmean([])
        with pytest.raises(ValueError):
            hmean([-1.0])

    def test_hmean_speedup(self):
        # Both threads at half their single-thread speed -> 0.5.
        assert hmean_speedup([1.0, 0.25], [2.0, 0.5]) == pytest.approx(0.5)

    def test_weighted_speedup(self):
        assert weighted_speedup([1.0, 0.25], [2.0, 0.5]) == pytest.approx(0.5)

    def test_speedup_validation(self):
        with pytest.raises(ValueError):
            hmean_speedup([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            hmean_speedup([1.0], [0.0])
        with pytest.raises(ValueError):
            weighted_speedup([1.0, 1.0], [1.0])


def make_result():
    threads = [
        ThreadResult("gzip", committed=2400, ipc=2.4, fetched=3000,
                     fetched_wrong_path=300, squashed=350,
                     mispredict_rate=0.04, l1d_missrate=0.02,
                     l2_missrate_pct=0.1, slow_cycle_frac=0.2),
        ThreadResult("mcf", committed=100, ipc=0.1, fetched=400,
                     fetched_wrong_path=150, squashed=200,
                     mispredict_rate=0.2, l1d_missrate=0.4,
                     l2_missrate_pct=29.0, slow_cycle_frac=0.95),
    ]
    return SimulationResult("DCRA", cycles=1000, threads=threads,
                            avg_l2_overlap=5.5)


class TestSimulationResult:
    def test_throughput(self):
        assert make_result().throughput == pytest.approx(2.5)

    def test_fetch_overhead(self):
        result = make_result()
        assert result.fetch_overhead() == pytest.approx(3400 / 2500 - 1.0)

    def test_hmean_vs(self):
        result = make_result()
        value = result.hmean_vs([2.4, 0.2])
        assert 0 < value < 1

    def test_weighted_speedup_vs(self):
        result = make_result()
        assert result.weighted_speedup_vs([2.4, 0.2]) == pytest.approx(
            (1.0 + 0.5) / 2)

    def test_fetch_overhead_zero_when_nothing_committed(self):
        result = make_result()
        for thread in result.threads:
            thread.committed = 0
        assert result.fetch_overhead() == 0.0


class TestCollectResult:
    def test_collect_from_processor(self):
        processor = SMTProcessor(SMTConfig(), [get_profile("gzip")],
                                 IcountPolicy(), seed=1)
        processor.run(1500)
        result = collect_result(processor)
        assert result.policy == "ICOUNT"
        assert result.cycles == 1500
        assert result.threads[0].benchmark == "gzip"
        assert result.threads[0].ipc == pytest.approx(
            processor.threads[0].stats.committed / 1500)

    def test_collect_honours_reset(self):
        processor = SMTProcessor(SMTConfig(), [get_profile("gzip")],
                                 IcountPolicy(), seed=1)
        processor.run(1000)
        processor.reset_stats()
        processor.run(500)
        result = collect_result(processor)
        assert result.cycles == 500

    def test_custom_names_and_policy(self):
        processor = SMTProcessor(SMTConfig(), [get_profile("gzip")],
                                 IcountPolicy(), seed=1)
        processor.run(100)
        result = collect_result(processor, benchmarks=["workload-a"],
                                policy_name="custom")
        assert result.threads[0].benchmark == "workload-a"
        assert result.policy == "custom"
