"""Tests for fetch-bandwidth arbitration (ICOUNT.2.8 behaviour)."""

import pytest

from repro.pipeline.config import SMTConfig
from repro.pipeline.processor import SMTProcessor
from repro.policies.basic import IcountPolicy, RoundRobinPolicy
from repro.trace.profiles import get_profile


def build(num_threads, policy=None, **cfg):
    benchmarks = ["gzip", "eon", "bzip2", "crafty"][:num_threads]
    return SMTProcessor(SMTConfig(**cfg),
                        [get_profile(b) for b in benchmarks],
                        policy or IcountPolicy(), seed=2)


def fetchers_per_cycle(processor, cycles):
    """Count how many distinct threads fetch each cycle."""
    counts = []
    fetched_before = [0] * processor.num_threads

    def hook(proc):
        now = [t.stats.fetched for t in proc.threads]
        counts.append(sum(1 for a, b in zip(fetched_before, now) if b > a))
        fetched_before[:] = now

    processor.cycle_hooks.append(hook)
    processor.run(cycles)
    return counts


class TestFetchArbitration:
    def test_at_most_two_threads_fetch_per_cycle(self):
        processor = build(4)
        counts = fetchers_per_cycle(processor, 300)
        assert max(counts) <= processor.config.fetch_threads

    def test_fetch_width_bounds_total(self):
        processor = build(2)
        total_before = 0

        def hook(proc, state={"last": 0}):
            now = sum(t.stats.fetched for t in proc.threads)
            assert now - state["last"] <= proc.config.fetch_width
            state["last"] = now

        processor.cycle_hooks.append(hook)
        processor.run(300)

    def test_single_fetch_thread_configuration(self):
        processor = build(2, fetch_threads=1)
        counts = fetchers_per_cycle(processor, 300)
        assert max(counts) <= 1

    def test_full_fetch_queue_blocks_thread(self):
        processor = build(1, fetch_queue_size=8)
        processor.run(200)
        assert len(processor.threads[0].fetch_queue) <= 8

    def test_all_threads_eventually_fetch(self):
        processor = build(4, policy=RoundRobinPolicy())
        processor.run(500)
        for thread in processor.threads:
            assert thread.stats.fetched > 0
