"""Tests for the chunked simulation core and interval statistics.

The acceptance contract of the interval refactor: for every policy in
the registry, on every executor backend, summing the per-interval
snapshots of ``run_intervals()`` reproduces the monolithic ``run()``
``SimulationResult`` bitwise — and warm-up expressed as discarded
intervals is equivalent to a ``reset_stats()`` warm-up.
"""

import dataclasses

import pytest

from repro.harness.engine import SimJob, run_jobs
from repro.harness.executors import (
    ProcessExecutor,
    RemoteExecutor,
    SerialExecutor,
)
from repro.harness.progress import (
    IntervalProgress,
    emit_progress,
    progress_sink,
)
from repro.harness.runner import (
    run_benchmarks,
    run_benchmarks_intervals,
    run_workload_intervals,
)
from repro.metrics.intervals import (
    IntervalRecorder,
    PhaseTimeline,
    detect_steady_state,
    detect_steady_state_suffix,
    snapshots_to_result,
    sum_snapshots,
    variance_over_time,
    window_settled,
)
from repro.pipeline.config import SMTConfig
from repro.pipeline.processor import SMTProcessor
from repro.policies.registry import POLICY_NAMES, make_policy
from repro.trace.profiles import get_profile
from repro.trace.workloads import make_workload

CYCLES = 2_000
WARMUP = 400
INTERVAL = 500


def _processor(benchmarks=("mcf", "gzip"), policy="DCRA", seed=3):
    return SMTProcessor(SMTConfig(),
                        [get_profile(b) for b in benchmarks],
                        make_policy(policy), seed=seed)


class TestBitwiseEquivalence:
    """Summed snapshots == monolithic result, across the whole matrix."""

    @pytest.mark.parametrize("policy", POLICY_NAMES)
    def test_every_registry_policy(self, policy):
        mono = run_benchmarks(["mcf", "gzip"], policy, cycles=CYCLES,
                              warmup=WARMUP, seed=3)
        interval = run_benchmarks_intervals(
            ["mcf", "gzip"], policy, cycles=CYCLES, warmup=WARMUP, seed=3,
            interval_cycles=INTERVAL)
        assert interval.result == mono

    @pytest.mark.parametrize("benchmarks", [
        ("gzip",),
        ("mcf", "twolf", "gzip", "bzip2"),
    ])
    def test_thread_counts(self, benchmarks):
        mono = run_benchmarks(list(benchmarks), "DCRA", cycles=CYCLES,
                              warmup=WARMUP, seed=5)
        interval = run_benchmarks_intervals(
            list(benchmarks), "DCRA", cycles=CYCLES, warmup=WARMUP, seed=5,
            interval_cycles=INTERVAL)
        assert interval.result == mono

    def test_uneven_final_interval(self):
        mono = run_benchmarks(["mcf"], "ICOUNT", cycles=1_700, warmup=300,
                              seed=9)
        interval = run_benchmarks_intervals(
            ["mcf"], "ICOUNT", cycles=1_700, warmup=300, seed=9,
            interval_cycles=500)
        assert interval.result == mono
        assert [s.cycles for s in interval.recorder.snapshots] \
            == [500, 500, 500, 200]

    def test_zero_measured_cycles_degrades_like_monolithic(self):
        mono = run_benchmarks(["gzip"], "ICOUNT", cycles=0, warmup=200,
                              seed=1)
        interval = run_benchmarks_intervals(
            ["gzip"], "ICOUNT", cycles=0, warmup=200, seed=1,
            interval_cycles=100)
        assert interval.result == mono
        assert interval.result.cycles == 0

    def test_warmup_as_discarded_intervals(self):
        mono = run_benchmarks(["mcf", "gzip"], "DCRA-ADAPT", cycles=CYCLES,
                              warmup=WARMUP, seed=3)
        interval = run_benchmarks_intervals(
            ["mcf", "gzip"], "DCRA-ADAPT", cycles=CYCLES, warmup=WARMUP,
            seed=3, interval_cycles=INTERVAL, warmup_as_intervals=True)
        assert interval.result == mono
        assert interval.recorder.discarded  # warm-up snapshots retained
        assert sum(s.cycles for s in interval.recorder.discarded) == WARMUP
        # Discarded indices count up to -1; measured stay 0-based, so
        # the two series never collide and measured indices match the
        # reset-based warm-up mode.
        assert interval.recorder.discarded[-1].index == -1
        assert [s.index for s in interval.recorder.snapshots][0] == 0

    def test_snapshot_sum_matches_collect_result_counters(self):
        """Summing snapshots equals one big interval, field for field."""
        processor = _processor()
        snapshots = list(processor.run_intervals(INTERVAL, n_intervals=4))
        total = sum_snapshots(snapshots)
        assert total.cycles == 4 * INTERVAL
        assert total.committed == sum(
            t.stats.committed for t in processor.threads)
        assert total.phase_counts is not None
        assert sum(total.phase_counts) == 4 * INTERVAL


class TestExecutorMatrix:
    """Interval-mode jobs are bitwise-identical on every backend."""

    @staticmethod
    def _jobs(interval_cycles):
        return [
            SimJob(("mcf", "gzip"), policy, None, CYCLES, WARMUP, seed=3,
                   interval_cycles=interval_cycles)
            for policy in ("ICOUNT", "STALL", "FLUSH", "DCRA", "DCRA-ADAPT")
        ]

    @pytest.fixture(scope="class")
    def reference(self):
        return run_jobs(self._jobs(None), 1)

    def test_serial_executor(self, reference):
        with SerialExecutor() as executor:
            assert run_jobs(self._jobs(INTERVAL), 1, executor) == reference

    def test_process_executor(self, reference):
        with ProcessExecutor(2) as executor:
            assert run_jobs(self._jobs(INTERVAL), 2, executor) == reference

    def test_remote_executor(self, reference):
        with RemoteExecutor(spawn_workers=2, timeout=120.0) as executor:
            assert run_jobs(self._jobs(INTERVAL), 2, executor) == reference


class TestRunIntervalsApi:
    def test_run_is_a_thin_wrapper(self):
        """run() and a consumed run_intervals() simulate identical cycles."""
        direct = _processor()
        direct.run(CYCLES)
        chunked = _processor()
        list(chunked.run_intervals(INTERVAL, total_cycles=CYCLES))
        assert direct.cycle == chunked.cycle
        assert [t.stats.committed for t in direct.threads] \
            == [t.stats.committed for t in chunked.threads]

    def test_run_zero_cycles_is_a_noop(self):
        processor = _processor()
        processor.run(0)
        assert processor.cycle == 0

    def test_argument_validation(self):
        processor = _processor()
        with pytest.raises(ValueError, match="interval_cycles"):
            list(processor.run_intervals(0, n_intervals=1))
        with pytest.raises(ValueError, match="exactly one"):
            list(processor.run_intervals(100))
        with pytest.raises(ValueError, match="exactly one"):
            list(processor.run_intervals(100, n_intervals=1,
                                         total_cycles=200))

    def test_snapshots_are_immutable(self):
        processor = _processor()
        snapshot = next(processor.run_intervals(100, n_intervals=1))
        with pytest.raises(dataclasses.FrozenInstanceError):
            snapshot.cycles = 7
        with pytest.raises(dataclasses.FrozenInstanceError):
            snapshot.threads[0].committed = 7

    def test_phase_tracking_off_by_default_for_run(self):
        processor = _processor()
        processor.run(200)
        assert processor.phase_counts is None

    def test_reset_stats_zeroes_phase_counts(self):
        processor = _processor()
        counts = processor.enable_phase_tracking()
        processor.run(200)
        assert sum(counts) == 200
        processor.reset_stats()
        assert sum(processor.phase_counts) == 0
        assert processor.phase_counts is counts  # same live list

    def test_phase_counts_cover_every_cycle(self):
        processor = _processor()
        snapshot = next(processor.run_intervals(300, n_intervals=1))
        assert snapshot.phase_counts is not None
        assert len(snapshot.phase_counts) == processor.num_threads + 1
        assert sum(snapshot.phase_counts) == 300

    def test_start_index_offsets_snapshot_indices(self):
        processor = _processor()
        snapshots = list(processor.run_intervals(100, n_intervals=3,
                                                 start_index=5))
        assert [s.index for s in snapshots] == [5, 6, 7]


class TestRecorderAndTimeline:
    @pytest.fixture(scope="class")
    def run(self):
        return run_benchmarks_intervals(
            ["mcf", "gzip"], "DCRA", cycles=CYCLES, warmup=WARMUP, seed=3,
            interval_cycles=INTERVAL)

    def test_series_lengths(self, run):
        n = len(run.recorder)
        assert n == CYCLES // INTERVAL
        assert len(run.recorder.throughput_series()) == n
        assert len(run.recorder.ipc_series(0)) == n

    def test_to_result_round_trip(self, run):
        rebuilt = snapshots_to_result(run.recorder.snapshots,
                                      ["mcf", "gzip"], "DCRA")
        # A raw rebuild carries no warm-up audit info; every measured
        # number must still match the runner's result bitwise.
        assert rebuilt.warmup_cycles is None
        assert rebuilt == dataclasses.replace(run.result,
                                              warmup_cycles=None)

    def test_phase_timeline_distribution(self, run):
        timeline = run.recorder.phase_timeline()
        assert timeline.num_threads == 2
        assert timeline.cycles == CYCLES
        assert sum(timeline.distribution_pct()) == pytest.approx(100.0)
        slow_slow, mixed, fast_fast = timeline.two_thread_split()
        assert slow_slow + mixed + fast_fast == pytest.approx(100.0)

    def test_timeline_merge(self, run):
        timeline = run.recorder.phase_timeline()
        merged = PhaseTimeline.merge([timeline, timeline])
        assert merged.cycles == 2 * timeline.cycles
        assert merged.distribution_pct() \
            == pytest.approx(timeline.distribution_pct())

    def test_two_thread_split_rejects_other_widths(self):
        timeline = PhaseTimeline(num_threads=3,
                                 entries=((10, (5, 3, 1, 1)),))
        with pytest.raises(ValueError, match="2-thread"):
            timeline.two_thread_split()

    def test_empty_recorder_rejects_aggregation(self):
        with pytest.raises(ValueError):
            IntervalRecorder().total()


class TestSteadyStateHelpers:
    def test_variance_over_time(self):
        series = [1.0, 1.0, 3.0]
        running = variance_over_time(series)
        assert running[0] == 0.0
        assert running[1] == pytest.approx(0.0)
        assert running[2] == pytest.approx(4.0 / 3.0)

    def test_detect_steady_state_finds_settled_suffix(self):
        values = [10.0, 5.0, 2.0, 1.0, 1.01, 0.99, 1.0]
        assert detect_steady_state(values, window=3, rel_tol=0.05) == 3

    def test_detect_steady_state_none_when_never_settles(self):
        assert detect_steady_state([1.0, 2.0, 4.0, 8.0], window=2,
                                   rel_tol=0.01) is None

    def test_detect_steady_state_validates_window(self):
        with pytest.raises(ValueError):
            detect_steady_state([1.0], window=1)

    def test_window_longer_than_series_returns_none(self):
        assert detect_steady_state([1.0, 1.0], window=3) is None
        assert detect_steady_state([], window=2) is None
        assert detect_steady_state_suffix([1.0, 1.0], window=3) is None

    def test_constant_zero_series_settles_immediately(self):
        assert detect_steady_state([0.0] * 5, window=3) == 0
        assert detect_steady_state_suffix([0.0] * 5, window=3) == 0

    def test_nan_windows_never_settle(self):
        """NaN comparisons are always False; the rule is now explicit —
        windows containing NaN are skipped, finite windows still match."""
        nan = float("nan")
        values = [nan, 1.0, 1.0, 1.0]
        assert detect_steady_state(values, window=3, rel_tol=0.05) == 1
        assert detect_steady_state([nan, nan, nan, nan], window=2) is None
        assert not window_settled([1.0, nan], rel_tol=10.0)

    def test_inf_windows_never_settle(self):
        inf = float("inf")
        assert detect_steady_state([inf, inf, 2.0, 2.0, 2.0],
                                   window=3) == 2
        assert not window_settled([inf, inf], rel_tol=0.5)

    def test_window_settled_rejects_empty(self):
        with pytest.raises(ValueError):
            window_settled([], rel_tol=0.05)

    def test_suffix_variant_ignores_transient_plateau(self):
        """A flat window mid-series must not end warm-up early: the
        plain detector stops at the plateau, the suffix variant waits
        for the stretch that holds to the end."""
        values = [1.0, 1.0, 1.0, 1.0, 5.0, 5.0, 5.0, 5.0]
        assert detect_steady_state(values, window=3, rel_tol=0.05) == 0
        assert detect_steady_state_suffix(values, window=3,
                                          rel_tol=0.05) == 4

    def test_suffix_variant_validates_window(self):
        with pytest.raises(ValueError):
            detect_steady_state_suffix([1.0, 1.0], window=1)

    def test_suffix_variant_none_when_tail_drifts(self):
        assert detect_steady_state_suffix([1.0, 2.0, 4.0, 8.0],
                                          window=2, rel_tol=0.01) is None


class TestProgressEvents:
    def test_runner_emits_one_event_per_interval(self):
        events = []
        run_benchmarks_intervals(
            ["gzip"], "ICOUNT", cycles=1_000, warmup=200, seed=1,
            interval_cycles=250, progress=events.append,
            progress_tag="probe")
        assert len(events) == 4
        assert [e.interval for e in events] == [0, 1, 2, 3]
        final = events[-1]
        assert final.cycles_done == final.total_cycles == 1_000
        assert final.n_intervals == 4
        assert final.tag == "probe"
        assert final.throughput == pytest.approx(
            final.committed / final.cycles_done)

    def test_default_sink_is_discard(self):
        emit_progress(IntervalProgress(0, 1, 1, 1, 1, 1.0))  # must not raise

    def test_progress_sink_scope(self):
        events = []
        with progress_sink(events.append):
            emit_progress(IntervalProgress(0, 1, 1, 1, 1, 1.0))
        emit_progress(IntervalProgress(1, 1, 1, 1, 1, 1.0))
        assert len(events) == 1

    @staticmethod
    def _interval_jobs():
        return [
            SimJob(("gzip",), "ICOUNT", None, 1_000, 200, seed=s,
                   interval_cycles=250, tag=f"job{s}")
            for s in (1, 2)
        ]

    def _assert_events(self, events):
        assert set(events) == {0, 1}
        for index in (0, 1):
            assert [e.interval for e in events[index]] == [0, 1, 2, 3]
            assert events[index][0].tag == f"job{index + 1}"

    def test_raising_callback_warns_but_does_not_abort(self):
        """Progress is telemetry: a broken callback cannot kill the run."""
        import warnings

        def broken(index, event):
            raise BrokenPipeError("consumer went away")

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with SerialExecutor() as executor:
                results = run_jobs(self._interval_jobs(), 1, executor,
                                   progress=broken)
        assert len(results) == 2
        assert all(r.cycles == 1_000 for r in results)
        assert any("progress callback" in str(w.message) for w in caught)

    def test_progress_through_serial_executor(self):
        events = {}
        with SerialExecutor() as executor:
            run_jobs(self._interval_jobs(), 1, executor,
                     progress=lambda i, e: events.setdefault(i, []).append(e))
        self._assert_events(events)

    def test_progress_through_process_executor(self):
        events = {}
        with ProcessExecutor(2) as executor:
            run_jobs(self._interval_jobs(), 2, executor,
                     progress=lambda i, e: events.setdefault(i, []).append(e))
        self._assert_events(events)

    def test_progress_through_remote_executor(self):
        events = {}
        with RemoteExecutor(spawn_workers=2, timeout=120.0) as executor:
            run_jobs(self._interval_jobs(), 2, executor,
                     progress=lambda i, e: events.setdefault(i, []).append(e))
        self._assert_events(events)


class TestWorkloadIntervals:
    def test_run_workload_intervals_matches_benchmarks(self):
        workload = make_workload(2, "MEM", 1)
        by_workload = run_workload_intervals(
            workload, "DCRA", cycles=1_000, warmup=200, seed=5,
            interval_cycles=250)
        by_benchmarks = run_benchmarks_intervals(
            list(workload.benchmarks), "DCRA", cycles=1_000, warmup=200,
            seed=5, interval_cycles=250)
        assert by_workload.result == by_benchmarks.result
