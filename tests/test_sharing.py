"""Unit tests for the DCRA sharing model — including exact Table 1."""

import pytest

from repro.core.sharing import (
    SHARING_FACTORS,
    SharingModel,
    precomputed_table,
    resolve_factor,
    slow_share,
)

#: Paper Table 1: (FA, SA, E_slow) for a 32-entry resource, 4 threads,
#: sharing factor C = 1/(FA+SA).
PAPER_TABLE_1 = [
    (0, 1, 32),
    (1, 1, 24),
    (0, 2, 16),
    (2, 1, 18),
    (1, 2, 14),
    (0, 3, 11),
    (3, 1, 14),
    (2, 2, 12),
    (1, 3, 10),
    (0, 4, 8),
]


class TestTable1Exact:
    def test_reproduces_paper_table_1(self):
        assert precomputed_table(32, 4, "inverse_active") == PAPER_TABLE_1

    @pytest.mark.parametrize("fa,sa,expected", PAPER_TABLE_1)
    def test_individual_entries(self, fa, sa, expected):
        assert slow_share(32, fa, sa, "inverse_active") == expected

    def test_table_has_ten_entries_for_four_threads(self):
        # The paper notes the 4-context table needs 10 entries.
        assert len(precomputed_table(32, 4)) == 10


class TestSlowShareProperties:
    def test_no_slow_threads_means_no_limit(self):
        assert slow_share(80, 3, 0) == 80

    def test_all_slow_equal_split(self):
        for threads in (1, 2, 3, 4):
            assert slow_share(80, 0, threads) == round(80 / threads)

    def test_share_at_least_equal_split(self):
        for fa in range(5):
            for sa in range(1, 5):
                share = slow_share(80, fa, sa)
                assert share >= 80 // (fa + sa)

    def test_share_never_exceeds_total(self):
        for fa in range(5):
            for sa in range(1, 5):
                assert slow_share(80, fa, sa) <= 80

    def test_slow_threads_cannot_collectively_oversubscribe_vs_fair(self):
        """SA slow threads at their cap leave room for fast threads as
        long as the fast threads use less than an equal share — the
        paper's borrow-from-fast idea (equation 2/3)."""
        total = 80
        for fa in range(1, 4):
            for sa in range(1, 4):
                cap = slow_share(total, fa, sa, "inverse_active_plus4")
                active = fa + sa
                borrowed = cap * sa - (total // active) * sa
                spare_of_fast = total - (total // active) * active + \
                    (total // active) * fa
                assert borrowed <= spare_of_fast + active  # rounding slack

    def test_zero_factor_is_equal_split_of_active(self):
        assert slow_share(80, 2, 2, "zero") == 20
        assert slow_share(80, 1, 1, "zero") == 40

    def test_plus4_tighter_than_plain(self):
        for fa in range(1, 4):
            for sa in range(1, 4):
                assert (slow_share(80, fa, sa, "inverse_active_plus4")
                        <= slow_share(80, fa, sa, "inverse_active"))

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            slow_share(32, -1, 1)


class TestFactors:
    def test_known_names(self):
        assert set(SHARING_FACTORS) == {
            "inverse_active", "inverse_active_plus4", "zero"}

    def test_resolve_accepts_callable(self):
        factor = resolve_factor(lambda fa, sa: 0.25)
        assert factor(1, 1) == 0.25

    def test_resolve_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown sharing factor"):
            resolve_factor("quadratic")

    def test_factor_values(self):
        assert SHARING_FACTORS["inverse_active"](1, 1) == pytest.approx(0.5)
        assert SHARING_FACTORS["inverse_active_plus4"](1, 1) == pytest.approx(1 / 6)
        assert SHARING_FACTORS["zero"](3, 1) == 0.0


class TestSharingModel:
    def test_separate_iq_and_reg_factors(self):
        model = SharingModel("zero", "inverse_active")
        assert model.share_for_iq(32, 1, 1) == 16
        assert model.share_for_reg(32, 1, 1) == 24

    def test_latency_presets(self):
        low = SharingModel.for_memory_latency(100)
        mid = SharingModel.for_memory_latency(300)
        high = SharingModel.for_memory_latency(500)
        # 100 cycles: C = 1/T everywhere.
        assert low.share_for_iq(32, 1, 1) == 24
        # 300 cycles: C = 1/(T+4).
        assert mid.share_for_iq(32, 1, 1) == round(16 * (1 + 1 / 6))
        # 500 cycles: C = 0 for queues, 1/(T+4) for registers.
        assert high.share_for_iq(32, 1, 1) == 16
        assert high.share_for_reg(32, 1, 1) == round(16 * (1 + 1 / 6))
