"""Property-based tests for the synthetic trace generator."""

from hypothesis import given, settings, strategies as st

from repro.isa.instruction import BranchKind, OpClass
from repro.trace.generator import SyntheticTraceGenerator
from repro.trace.profiles import ALL_BENCHMARKS, get_profile

benchmark_names = st.sampled_from(sorted(ALL_BENCHMARKS))
seeds = st.integers(0, 2**31)


class TestStreamWellFormedness:
    @given(name=benchmark_names, seed=seeds)
    @settings(max_examples=30, deadline=None)
    def test_ops_are_well_formed(self, name, seed):
        generator = SyntheticTraceGenerator(get_profile(name), seed=seed)
        for _ in range(300):
            op = generator.next_op()
            assert op.pc >= generator._code_base
            if op.op_class in (OpClass.LOAD, OpClass.STORE):
                assert op.mem_addr is not None
                assert op.mem_addr >= generator._data_base
            else:
                assert op.mem_addr is None
            if op.op_class == OpClass.BRANCH:
                assert op.branch_kind != BranchKind.NONE
                if op.taken:
                    assert op.target > 0
            for dist in op.src_dists:
                assert dist >= 1

    @given(name=benchmark_names, seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_fp_only_from_fp_suites(self, name, seed):
        profile = get_profile(name)
        generator = SyntheticTraceGenerator(profile, seed=seed)
        for _ in range(300):
            op = generator.next_op()
            if profile.suite == "int":
                assert op.op_class != OpClass.FP_ALU
                assert not op.dest_is_fp

    @given(name=benchmark_names, seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_determinism_under_interleaved_wrong_path(self, name, seed):
        reference = SyntheticTraceGenerator(get_profile(name), seed=seed)
        probed = SyntheticTraceGenerator(get_profile(name), seed=seed)
        for step in range(200):
            if step % 7 == 0:
                probed.wrong_path_op(0x4000 + step * 4)
            a = reference.next_op()
            b = probed.next_op()
            assert (a.pc, a.op_class, a.mem_addr, a.src_dists, a.taken) == \
                (b.pc, b.op_class, b.mem_addr, b.src_dists, b.taken)

    @given(seed=seeds)
    @settings(max_examples=10, deadline=None)
    def test_pc_continuity(self, seed):
        """PCs advance by 4 except across taken branches."""
        generator = SyntheticTraceGenerator(get_profile("gzip"), seed=seed)
        previous = None
        for _ in range(400):
            op = generator.next_op()
            if previous is not None:
                if previous.op_class == OpClass.BRANCH and previous.taken:
                    assert op.pc == previous.target
                else:
                    assert op.pc == previous.pc + 4
            previous = op
