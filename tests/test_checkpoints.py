"""Checkpointable state + shared-prefix sweeps: the bitwise contract.

The acceptance gate of the checkpoint subsystem is a single invariant,
pinned here from every angle: a run forked from a captured/stored
warm-up state is **bitwise identical** to the uninterrupted run —
per policy, per thread count, per run mode, per executor, and across
a JSON round-trip through another process.
"""

import dataclasses
import json
import subprocess
import sys
from pathlib import Path

import pytest

import repro.__main__ as cli
from repro.harness import results as results_mod
from repro.harness.checkpoints import (
    CheckpointMiss,
    CheckpointStore,
    checkpoint_store,
    job_prefix_token,
    prefix_token,
    warmup_boundary_token,
)
from repro.harness.engine import (
    SimJob,
    ensure_checkpoints,
    factor_prefixes,
    run_job,
)
from repro.harness.results import (
    ResultStoreMiss,
    interval_run_to_payload,
    job_token,
    result_store,
)
from repro.harness.runner import (
    _build_processor,
    run_benchmarks,
    run_benchmarks_intervals,
)
from repro.harness.scenario import Scenario, run_scenario
from repro.harness.warmup import WarmupPolicy, as_warmup_policy
from repro.policies.registry import POLICY_NAMES
from repro.snapshot import SNAPSHOT_VERSION, SnapshotError

BENCHMARKS = ("gzip", "twolf", "art", "mcf", "vpr", "equake")


def state_key(processor):
    """Canonical bitwise fingerprint of a processor's full state."""
    return json.dumps(processor.capture_state(), sort_keys=True)


def result_key(result):
    return json.dumps(dataclasses.asdict(result), sort_keys=True)


# --------------------------------------------------------------------------
# Property suite: capture -> restore -> run == uninterrupted, everywhere
# --------------------------------------------------------------------------

class TestRestoreBitwise:
    """Every registry policy, several thread counts, one invariant."""

    @pytest.mark.parametrize("policy", list(POLICY_NAMES))
    @pytest.mark.parametrize("num_threads", [1, 2, 4, 6])
    def test_restore_then_run_matches_uninterrupted(
            self, policy, num_threads, small_config):
        benchmarks = BENCHMARKS[:num_threads]
        # Leave a rename pool after carving out per-thread arch state.
        regs = 128 + 32 * num_threads
        config = dataclasses.replace(small_config,
                                     int_physical_registers=regs,
                                     fp_physical_registers=regs)
        straight = _build_processor(benchmarks, policy, config, seed=9)
        straight.run(700)
        # JSON round-trip: what the disk store would serve.
        state = json.loads(json.dumps(straight.capture_state()))
        straight.run(500)

        forked = _build_processor(benchmarks, policy, config, seed=9)
        forked.restore_state(state)
        forked.run(500)
        assert state_key(forked) == state_key(straight)

    def test_restore_across_process(self, small_config, tmp_path):
        """A state captured here restores bitwise in a fresh process."""
        processor = _build_processor(("gzip", "mcf"), "DCRA", small_config, 3)
        processor.run(600)
        state_path = tmp_path / "state.json"
        state_path.write_text(json.dumps(processor.capture_state()))
        processor.run(400)
        expected = state_key(processor)

        script = (
            "import json, sys\n"
            "from repro.harness.runner import _build_processor\n"
            "from repro.pipeline.config import SMTConfig\n"
            "config = SMTConfig(**json.loads(sys.argv[2]))\n"
            "p = _build_processor(('gzip', 'mcf'), 'DCRA', config, 3)\n"
            "p.restore_state(json.loads(open(sys.argv[1]).read()))\n"
            "p.run(400)\n"
            "print(json.dumps(p.capture_state(), sort_keys=True))\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script, str(state_path),
             json.dumps(dataclasses.asdict(small_config))],
            capture_output=True, text=True, check=True,
            cwd=str(Path(__file__).resolve().parent.parent),
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"})
        assert proc.stdout.strip() == expected

    def test_version_mismatch_rejected(self, small_config):
        processor = _build_processor(("gzip",), "ICOUNT", small_config, 1)
        processor.run(100)
        state = processor.capture_state()
        assert state["version"] == SNAPSHOT_VERSION
        state["version"] = SNAPSHOT_VERSION + 1
        fresh = _build_processor(("gzip",), "ICOUNT", small_config, 1)
        with pytest.raises(SnapshotError, match="version"):
            fresh.restore_state(state)

    def test_thread_count_mismatch_rejected(self, small_config):
        processor = _build_processor(("gzip", "mcf"), "ICOUNT",
                                     small_config, 1)
        processor.run(100)
        fresh = _build_processor(("gzip",), "ICOUNT", small_config, 1)
        with pytest.raises(SnapshotError, match="thread"):
            fresh.restore_state(processor.capture_state())


# --------------------------------------------------------------------------
# Runner: checkpointed warm-up == plain warm-up, both run modes
# --------------------------------------------------------------------------

class TestRunnerCheckpoints:
    def test_cold_then_warm_bitwise(self, small_config):
        plain = run_benchmarks(("gzip", "twolf"), "DCRA", small_config,
                               cycles=800, warmup=600, seed=5)
        cold = run_benchmarks(("gzip", "twolf"), "DCRA", small_config,
                              cycles=800, warmup=600, seed=5,
                              checkpoint="auto")
        warm = run_benchmarks(("gzip", "twolf"), "DCRA", small_config,
                              cycles=800, warmup=600, seed=5,
                              checkpoint="require")
        assert result_key(plain) == result_key(cold) == result_key(warm)
        stats = checkpoint_store.stats
        assert stats.stores == 1 and stats.hits >= 1

    def test_interval_adaptive_cold_then_warm(self, small_config):
        warmup = WarmupPolicy.steady_state(window=3, rel_tol=0.2,
                                           max_warmup=1_500)

        def run(**kwargs):
            return run_benchmarks_intervals(
                ("vpr", "mcf"), "DCRA-ADAPT", small_config, cycles=900,
                warmup=warmup, seed=4, interval_cycles=300, **kwargs)

        plain, cold, warm = (run(), run(checkpoint="auto"),
                             run(checkpoint="require"))
        # The whole interval run — aggregate, measured snapshots AND
        # discarded warm-up snapshots — must round-trip bitwise.
        assert (json.dumps(interval_run_to_payload(plain), sort_keys=True)
                == json.dumps(interval_run_to_payload(cold), sort_keys=True)
                == json.dumps(interval_run_to_payload(warm), sort_keys=True))

    def test_fork_lead_policy_identical_to_plain(self, small_config):
        plain = run_benchmarks(("gzip", "twolf"), "ICOUNT", small_config,
                               cycles=600, warmup=500, seed=2)
        forked = run_benchmarks(("gzip", "twolf"), "ICOUNT", small_config,
                                cycles=600, warmup=500, seed=2,
                                checkpoint="auto", warmup_policy="ICOUNT")
        assert result_key(plain) == result_key(forked)

    def test_fork_is_deterministic_and_distinct(self, small_config):
        def forked():
            return run_benchmarks(("gzip", "twolf"), "DCRA", small_config,
                                  cycles=600, warmup=500, seed=2,
                                  checkpoint="auto", warmup_policy="ICOUNT")

        plain = run_benchmarks(("gzip", "twolf"), "DCRA", small_config,
                               cycles=600, warmup=500, seed=2)
        first, second = forked(), forked()
        assert result_key(first) == result_key(second)
        # Measuring DCRA from ICOUNT's warm state is a different
        # experiment than warming under DCRA itself.
        assert result_key(first) != result_key(plain)

    def test_warmup_as_intervals_rejects_checkpointing(self, small_config):
        with pytest.raises(ValueError, match="warmup_as_intervals"):
            run_benchmarks_intervals(("gzip",), "ICOUNT", small_config,
                                     cycles=300, warmup=300, seed=1,
                                     interval_cycles=150,
                                     warmup_as_intervals=True,
                                     checkpoint="auto")

    def test_zero_warmup_needs_no_checkpoint(self, small_config):
        plain = run_benchmarks(("gzip",), "ICOUNT", small_config,
                               cycles=300, warmup=0, seed=1)
        auto = run_benchmarks(("gzip",), "ICOUNT", small_config,
                              cycles=300, warmup=0, seed=1,
                              checkpoint="auto")
        assert result_key(plain) == result_key(auto)
        assert checkpoint_store.stats.stores == 0


# --------------------------------------------------------------------------
# Store: keying, staleness, listing, gc, miss diagnostics
# --------------------------------------------------------------------------

class TestCheckpointStore:
    def test_stale_fingerprint_rejected(self, small_config, monkeypatch):
        run_benchmarks(("gzip",), "ICOUNT", small_config, cycles=200,
                       warmup=300, seed=1, checkpoint="auto")
        assert checkpoint_store.stats.stores == 1
        # A source edit changes the fingerprint: stored state must miss.
        monkeypatch.setattr(results_mod, "_fingerprint_cache",
                            "0123456789abcdef")
        fresh = CheckpointStore()  # no memory layer, same directory
        token = job_prefix_token(SimJob(("gzip",), "ICOUNT", small_config,
                                        200, 300, 1))
        assert fresh.get(token) is None
        with pytest.raises(CheckpointMiss, match="fingerprint"):
            fresh.require(token)

    def test_miss_diff_names_the_differing_component(self, small_config):
        run_benchmarks(("gzip", "twolf"), "DCRA", small_config, cycles=300,
                       warmup=400, seed=1, checkpoint="auto")
        with pytest.raises(CheckpointMiss, match="seed: '2' != '1'"):
            run_benchmarks(("gzip", "twolf"), "DCRA", small_config,
                           cycles=300, warmup=400, seed=2,
                           checkpoint="require")

    def test_result_store_miss_diff(self, small_config):
        job = SimJob(("gzip",), "ICOUNT", small_config, 300, 200, seed=1)
        run_job_and_store(job)
        probe = dataclasses.replace(job, policy="DCRA")
        with pytest.raises(ResultStoreMiss,
                           match="policy: 'DCRA' != 'ICOUNT'"):
            result_store.require(probe)

    def test_result_store_miss_on_empty_store(self, small_config):
        job = SimJob(("gzip",), "ICOUNT", small_config, 300, 200, seed=1)
        with pytest.raises(ResultStoreMiss, match="no entries"):
            result_store.require(job)

    def test_list_remove_gc(self, small_config):
        for seed in (1, 2, 3):
            run_benchmarks(("gzip",), "ICOUNT", small_config, cycles=150,
                           warmup=250, seed=seed, checkpoint="auto")
        entries = checkpoint_store.list_entries()
        assert len(entries) == 3
        assert all(entry["current"] for entry in entries)
        assert all(entry["warmup_cycles"] == 250 for entry in entries)

        removed = checkpoint_store.remove(entries[0]["key"][:12])
        assert removed == 1
        assert len(checkpoint_store.list_entries()) == 2

        removed, freed = checkpoint_store.gc(max_total_bytes=0)
        assert removed == 2 and freed > 0
        assert checkpoint_store.list_entries() == []

    def test_gc_by_age_keeps_recent(self, small_config):
        run_benchmarks(("gzip",), "ICOUNT", small_config, cycles=150,
                       warmup=250, seed=1, checkpoint="auto")
        removed, _ = checkpoint_store.gc(max_age_days=1)
        assert removed == 0
        assert len(checkpoint_store.list_entries()) == 1

    def test_boundary_tokens_separate_run_modes(self):
        fixed = as_warmup_policy(2_000)
        auto = WarmupPolicy.steady_state()
        assert warmup_boundary_token(fixed, None) == "mono"
        assert warmup_boundary_token(fixed, 500) == "mono"
        assert warmup_boundary_token(auto, None) != \
            warmup_boundary_token(auto, 500)

    def test_job_token_wp_suffix_only_when_forking(self):
        base = SimJob(("gzip",), "DCRA")
        forked = dataclasses.replace(base, warmup_policy="ICOUNT")
        assert "|wp=" not in job_token(base)
        assert job_token(forked) == job_token(base) + "|wp=ICOUNT"
        # checkpoint mode is bookkeeping, never identity
        assert job_token(dataclasses.replace(base, checkpoint="auto")) \
            == job_token(base)


def run_job_and_store(job):
    result_store.put(job, run_job(job), "result")


# --------------------------------------------------------------------------
# Engine + scenario: shared prefixes execute exactly once, on any backend
# --------------------------------------------------------------------------

class TestPrefixSharing:
    def jobs(self, small_config):
        return [SimJob(("gzip", "art"), policy, small_config, 400, 500,
                       seed=7, checkpoint="auto",
                       warmup_policy=None if policy == "ICOUNT"
                       else "ICOUNT")
                for policy in ("ICOUNT", "STALL", "FLUSH", "DCRA")]

    def test_factor_prefixes_collapses_shared_warmup(self, small_config):
        groups = factor_prefixes(self.jobs(small_config))
        assert len(groups) == 1
        (indices,) = groups.values()
        assert indices == [0, 1, 2, 3]

    def test_prefix_executes_exactly_once(self, small_config):
        jobs = self.jobs(small_config)
        stats = ensure_checkpoints(jobs)
        assert stats == {"prefixes": 1, "jobs": 4, "hits": 0, "computed": 1}
        stores_before = checkpoint_store.stats.stores
        for job in jobs:
            run_job(job)
        # Every job restored the shared prefix; none re-simulated it.
        assert checkpoint_store.stats.stores == stores_before
        assert ensure_checkpoints(jobs)["computed"] == 0

    def test_scenario_shared_warmup_identical_across_executors(
            self, small_config):
        scenario = Scenario(
            name="shared", workloads=("gzip+twolf",),
            policies=("ICOUNT", "DCRA"), config=small_config,
            cycles=400, warmup=500, seed=3, shared_warmup=True)
        serial = run_scenario(scenario, reuse="off")
        assert serial.checkpoint_stats == {
            "prefixes": 1, "jobs": 2, "hits": 0, "computed": 1}
        parallel = run_scenario(scenario, jobs=2, executor="process",
                                reuse="off")
        assert ([result_key(r) for r in serial.results]
                == [result_key(r) for r in parallel.results])

    def test_scenario_plain_vs_shared_lead_policy(self, small_config):
        shared = Scenario(
            name="shared", workloads=("gzip+twolf",),
            policies=("ICOUNT", "DCRA"), config=small_config,
            cycles=400, warmup=500, seed=3, shared_warmup=True)
        plain = dataclasses.replace(shared, name="plain",
                                    shared_warmup=False)
        shared_run = run_scenario(shared, reuse="off")
        plain_run = run_scenario(plain, reuse="off")
        # The lead policy's job is the same experiment either way.
        assert result_key(shared_run.results[0]) \
            == result_key(plain_run.results[0])

    def test_warm_result_store_skips_prefix_phase(self, small_config):
        scenario = Scenario(
            name="shared", workloads=("gzip+twolf",),
            policies=("ICOUNT", "DCRA"), config=small_config,
            cycles=400, warmup=500, seed=3, shared_warmup=True)
        first = run_scenario(scenario, reuse="auto")
        assert first.checkpoint_stats["computed"] == 1
        second = run_scenario(scenario, reuse="auto")
        assert second.store_stats["hits"] == 2
        assert second.checkpoint_stats == {
            "prefixes": 0, "jobs": 0, "hits": 0, "computed": 0}


# --------------------------------------------------------------------------
# CLI
# --------------------------------------------------------------------------

class TestCheckpointCli:
    def test_list_rm_gc_roundtrip(self, small_config, capsys):
        run_benchmarks(("gzip",), "ICOUNT", small_config, cycles=150,
                       warmup=250, seed=1, checkpoint="auto")
        assert cli.main(["checkpoint", "list"]) == 0
        out = capsys.readouterr().out
        assert "1 checkpoint(s)" in out and "gzip|ICOUNT" in out

        key = checkpoint_store.list_entries()[0]["key"]
        assert cli.main(["checkpoint", "rm", key[:10]]) == 0
        assert "removed 1" in capsys.readouterr().out

        assert cli.main(["checkpoint", "gc", "--max-total-mb", "0"]) == 0
        assert cli.main(["checkpoint", "list"]) == 0
        assert "no checkpoints" in capsys.readouterr().out

    def test_gc_requires_a_bound(self):
        with pytest.raises(SystemExit):
            cli.main(["checkpoint", "gc"])

    def test_scenario_checkpoint_require_cold_fails(self, small_config,
                                                    tmp_path, capsys):
        spec = tmp_path / "scenario.json"
        spec.write_text(json.dumps({
            "name": "cli", "workloads": ["gzip+twolf"],
            "policies": ["ICOUNT", "DCRA"], "cycles": 300, "warmup": 400,
            "shared_warmup": True}))
        assert cli.main(["scenario", "run", str(spec), "--no-hmean",
                         "--checkpoint", "require"]) == 3
        assert "no stored checkpoint" in capsys.readouterr().err
        # auto computes, then require succeeds against the warm store
        assert cli.main(["scenario", "run", str(spec), "--no-hmean"]) == 0
        capsys.readouterr()
        assert cli.main(["scenario", "run", str(spec), "--no-hmean",
                         "--reuse", "off", "--checkpoint", "require"]) == 0
        assert "1 reused, 0 computed" in capsys.readouterr().err
