"""Tests for the pluggable executor backends and streaming sweeps.

The acceptance contract: every backend — serial, local process pool,
remote socket workers — produces bitwise-identical
:class:`SimulationResult` lists for the same job list, and the
streaming APIs reassemble to exactly the blocking output.
"""

import pytest

from repro.harness.engine import (
    SimJob,
    parallel_map,
    parallel_map_streaming,
    run_jobs,
    run_jobs_streaming,
)
from repro.harness.executors import (
    EXECUTOR_NAMES,
    Executor,
    ProcessExecutor,
    RemoteExecutor,
    SerialExecutor,
    make_executor,
)

CYCLES = 1_000
WARMUP = 250


def small_jobs():
    return [
        SimJob(("gzip",), "ICOUNT", None, CYCLES, WARMUP, seed=3),
        SimJob(("mcf", "gzip"), "DCRA", None, CYCLES, WARMUP, seed=3),
        SimJob(("twolf",), ("DCRA", {"activity_window": 64}), None,
               CYCLES, WARMUP, seed=5),
        SimJob(("gzip", "twolf"), "FLUSH++", None, CYCLES, WARMUP, seed=7),
    ]


@pytest.fixture(scope="module")
def remote_executor():
    """One loopback worker fleet shared by the module's remote tests."""
    with RemoteExecutor(spawn_workers=2, timeout=120.0) as executor:
        yield executor


@pytest.fixture(scope="module")
def reference_results():
    return [r for r in run_jobs(small_jobs(), max_workers=1)]


def _square(x):
    return x * x


def _boom(x):
    raise ValueError(f"task {x} exploded")


class TestBackendDeterminism:
    """Serial, process and remote runs must be bitwise-identical."""

    def test_serial_executor_matches_plain_run(self, reference_results):
        with SerialExecutor() as executor:
            assert run_jobs(small_jobs(), 1, executor) == reference_results

    def test_process_executor_matches_serial(self, reference_results):
        with ProcessExecutor(2) as executor:
            assert run_jobs(small_jobs(), 2, executor) == reference_results

    def test_remote_executor_matches_serial(self, remote_executor,
                                            reference_results):
        assert run_jobs(small_jobs(), 2, remote_executor) \
            == reference_results

    def test_executor_names_accepted_by_run_jobs(self, reference_results):
        # Name-based selection builds (and closes) a backend per call.
        assert run_jobs(small_jobs(), 2, "serial") == reference_results
        assert run_jobs(small_jobs(), 2, "process") == reference_results


class TestStreaming:
    """Streamed (index, result) pairs reassemble to the blocking output."""

    @staticmethod
    def _assert_stream_matches(executor, reference):
        pairs = list(run_jobs_streaming(small_jobs(), 2, executor))
        assert sorted(index for index, _ in pairs) == list(range(len(pairs)))
        reassembled = [result for _, result in sorted(pairs)]
        assert reassembled == reference

    def test_serial_stream(self, reference_results):
        with SerialExecutor() as executor:
            self._assert_stream_matches(executor, reference_results)

    def test_process_stream(self, reference_results):
        with ProcessExecutor(2) as executor:
            self._assert_stream_matches(executor, reference_results)

    def test_remote_stream(self, remote_executor, reference_results):
        self._assert_stream_matches(remote_executor, reference_results)

    def test_serial_stream_is_in_submission_order(self):
        pairs = list(parallel_map_streaming(_square, range(10)))
        assert pairs == [(i, i * i) for i in range(10)]

    def test_parallel_map_streaming_with_pool(self):
        pairs = list(parallel_map_streaming(_square, range(10),
                                            max_workers=3))
        assert sorted(pairs) == [(i, i * i) for i in range(10)]


class TestExecutorBehaviour:
    def test_executor_is_reusable_across_calls(self, remote_executor):
        first = remote_executor.map(_square, range(8))
        second = remote_executor.map(_square, range(8))
        assert first == second == [i * i for i in range(8)]

    def test_remote_task_exception_propagates(self, remote_executor):
        with pytest.raises(RuntimeError, match="exploded"):
            remote_executor.map(_boom, [1])

    def test_remote_worker_survives_task_exception(self, remote_executor):
        with pytest.raises(RuntimeError):
            remote_executor.map(_boom, [1])
        assert remote_executor.map(_square, [3]) == [9]

    def test_serial_exception_propagates(self):
        with pytest.raises(ValueError, match="exploded"):
            SerialExecutor().map(_boom, [1])

    def test_empty_item_list(self, remote_executor):
        for executor in (SerialExecutor(), remote_executor):
            assert executor.map(_square, []) == []

    def test_closed_remote_executor_rejects_work(self):
        executor = RemoteExecutor(spawn_workers=1, timeout=60.0)
        executor.close()
        with pytest.raises(RuntimeError, match="closed"):
            list(executor.map_unordered(_square, [1]))

    def test_closed_process_executor_rejects_work(self):
        """Use-after-close raises rather than silently running serially."""
        executor = ProcessExecutor(2)
        executor.close()
        with pytest.raises(RuntimeError, match="closed"):
            executor.map(_square, [1, 2])
        with pytest.raises(RuntimeError, match="closed"):
            executor.map(_square, [1])

    def test_closed_serial_executor_rejects_work(self):
        executor = SerialExecutor()
        executor.close()
        with pytest.raises(RuntimeError, match="closed"):
            executor.map(_square, [1])

    def test_warm_up_then_map(self):
        """warm_up pre-forks pool workers; mapping afterwards still works."""
        with ProcessExecutor(2) as executor:
            executor.warm_up()
            assert executor.map(_square, range(6)) \
                == [i * i for i in range(6)]
        SerialExecutor().warm_up()  # no-op on workerless backends


class TestRemoteBatching:
    """Task batching amortises round-trips without changing results."""

    def test_fixed_batch_size_matches_serial(self):
        items = list(range(17))
        with RemoteExecutor(spawn_workers=2, timeout=120.0,
                            batch_size=4) as executor:
            assert executor.map(_square, items) == [i * i for i in items]

    def test_batch_of_one_matches_serial(self):
        items = list(range(5))
        with RemoteExecutor(spawn_workers=1, timeout=120.0,
                            batch_size=1) as executor:
            assert executor.map(_square, items) == [i * i for i in items]

    def test_adaptive_batching_on_deep_queue(self):
        """Default heuristic: a deep backlog on few workers batches up."""
        items = list(range(40))
        with RemoteExecutor(spawn_workers=1, timeout=120.0) as executor:
            assert executor.map(_square, items) == [i * i for i in items]

    def test_exception_inside_a_batch_propagates(self):
        with RemoteExecutor(spawn_workers=1, timeout=120.0,
                            batch_size=8) as executor:
            with pytest.raises(RuntimeError, match="exploded"):
                executor.map(_boom, [1, 2, 3])
            # The worker survives the failing batch and keeps serving.
            assert executor.map(_square, [5]) == [25]

    def test_invalid_batch_size_rejected(self):
        with pytest.raises(ValueError, match="batch_size"):
            RemoteExecutor(spawn_workers=0, batch_size=0)

    def test_sim_jobs_batched_match_reference(self, reference_results):
        with RemoteExecutor(spawn_workers=2, timeout=120.0,
                            batch_size=3) as executor:
            assert run_jobs(small_jobs(), 2, executor) == reference_results


class TestMakeExecutor:
    def test_auto_is_serial_for_one_worker(self):
        assert isinstance(make_executor(None, 1), SerialExecutor)
        assert isinstance(make_executor("auto", 1), SerialExecutor)

    def test_auto_is_process_for_many_workers(self):
        executor = make_executor(None, 4)
        assert isinstance(executor, ProcessExecutor)
        assert executor.max_workers == 4
        executor.close()

    def test_instance_passes_through(self):
        executor = SerialExecutor()
        assert make_executor(executor, 8) is executor

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            make_executor("carrier-pigeon", 2)

    def test_names_cover_cli_choices(self):
        assert set(EXECUTOR_NAMES) == {"auto", "serial", "process", "remote",
                                       "broker"}

    def test_every_backend_is_an_executor(self):
        for cls in (SerialExecutor, ProcessExecutor, RemoteExecutor):
            assert issubclass(cls, Executor)


class TestParallelMapCompatibility:
    """The PR-1 entry points keep their exact semantics."""

    def test_default_serial_path_unchanged(self):
        items = list(range(20))
        assert parallel_map(_square, items, max_workers=1) \
            == [i * i for i in items]

    def test_pool_path_unchanged(self):
        items = list(range(20))
        assert parallel_map(_square, items, max_workers=4) \
            == [i * i for i in items]
