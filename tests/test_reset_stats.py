"""Regression tests for the warm-up statistics reset.

``SMTProcessor.reset_stats`` historically reset only a handful of
counters; everything else (BTB/gshare counters, cache/TLB hit-miss
counters, MSHR merge/overlap statistics, policy-side counters such as
DCRA's stall cycles) leaked warm-up events into the measurement window.
These tests pin the audited behaviour: after a reset every statistic is
zero, and the measured window's statistics equal the delta an
uninterrupted run accumulates over the same cycles.
"""

import dataclasses

import pytest

from repro.pipeline.config import SMTConfig
from repro.pipeline.processor import SMTProcessor
from repro.policies.registry import make_policy
from repro.trace.profiles import get_profile

WARMUP = 2_000
MEASURE = 1_500


def build(benchmarks=("gzip", "mcf"), policy="DCRA", seed=9):
    return SMTProcessor(SMTConfig(), [get_profile(b) for b in benchmarks],
                        make_policy(policy), seed=seed)


def snapshot(processor):
    """Every statistic the harness may report, as one flat dict."""
    stats = {}
    for thread in processor.threads:
        for field in dataclasses.fields(thread.stats):
            stats[f"t{thread.tid}.{field.name}"] = \
                getattr(thread.stats, field.name)
    for tid, mem in processor.hierarchy.thread_stats.items():
        for field in dataclasses.fields(mem):
            stats[f"mem{tid}.{field.name}"] = getattr(mem, field.name)
    hierarchy = processor.hierarchy
    for cache in (hierarchy.l1i, hierarchy.l1d, hierarchy.l2):
        stats[f"{cache.name}.hits"] = cache.hits
        stats[f"{cache.name}.misses"] = cache.misses
    stats["tlb.hits"] = hierarchy.dtlb.hits
    stats["tlb.misses"] = hierarchy.dtlb.misses
    mshrs = hierarchy.mshrs
    stats["mshr.merges"] = mshrs.merges
    stats["mshr.allocations"] = mshrs.allocations
    stats["mshr.l2_overlap_samples"] = mshrs.l2_overlap_samples
    stats["mshr.l2_overlap_sum"] = mshrs.l2_overlap_sum
    unit = processor.branch_unit
    stats["branch.cond_predictions"] = unit.cond_predictions
    stats["branch.cond_mispredictions"] = unit.cond_mispredictions
    stats["btb.hits"] = unit.btb.hits
    stats["btb.misses"] = unit.btb.misses
    return stats


class TestResetZeroesEverything:
    @pytest.mark.parametrize("policy", ["ICOUNT", "DCRA", "FLUSH++", "PDG"])
    def test_all_counters_zero_after_reset(self, policy):
        processor = build(policy=policy)
        processor.run(WARMUP)
        # Warm-up must actually have accumulated something to reset.
        warm = snapshot(processor)
        assert warm["t0.fetched"] > 0
        assert warm["branch.cond_predictions"] > 0
        assert warm["L1D.hits"] > 0

        processor.reset_stats()
        for name, value in snapshot(processor).items():
            assert value == 0, f"{name} survived reset_stats ({value})"

    def test_dcra_stall_cycles_reset(self):
        processor = build(policy="DCRA")
        processor.run(WARMUP)
        processor.policy.stall_cycles[0] += 1  # ensure non-trivial
        processor.reset_stats()
        assert processor.policy.stall_cycles == [0, 0]

    def test_pdg_counters_reset(self):
        processor = build(policy="PDG")
        processor.run(WARMUP)
        assert processor.policy.predictions > 0
        processor.reset_stats()
        assert processor.policy.predictions == 0
        assert processor.policy.predicted_misses == 0


class TestMeasurementWindowIndependence:
    """Measured stats must equal the uninterrupted run's window delta."""

    @pytest.mark.parametrize("policy", ["ICOUNT", "DCRA"])
    def test_stats_equal_window_delta(self, policy):
        uninterrupted = build(policy=policy)
        uninterrupted.run(WARMUP)
        before = snapshot(uninterrupted)
        uninterrupted.run(MEASURE)
        after = snapshot(uninterrupted)
        delta = {name: after[name] - before[name] for name in after}

        reset_run = build(policy=policy)
        reset_run.run(WARMUP)
        reset_run.reset_stats()
        reset_run.run(MEASURE)
        measured = snapshot(reset_run)

        assert measured == delta

    def test_reset_does_not_change_behaviour(self):
        """Committing the same instructions with or without a reset."""
        plain = build(policy="DCRA-ADAPT")
        plain.run(WARMUP + MEASURE)

        reset_run = build(policy="DCRA-ADAPT")
        reset_run.run(WARMUP)
        committed_at_reset = [t.stats.committed for t in reset_run.threads]
        reset_run.reset_stats()
        reset_run.run(MEASURE)

        for tid, thread in enumerate(reset_run.threads):
            total = committed_at_reset[tid] + thread.stats.committed
            assert total == plain.threads[tid].stats.committed

    def test_stat_cycles_tracks_reset(self):
        processor = build()
        processor.run(WARMUP)
        processor.reset_stats()
        assert processor.stat_cycles == 0
        processor.run(MEASURE)
        assert processor.stat_cycles == MEASURE
