"""Tests for the harness runner (workload execution and evaluation)."""

import pytest

from repro.harness.runner import (
    clear_baseline_cache,
    evaluate_workload,
    geometric_mean,
    improvement_pct,
    run_benchmarks,
    run_workload,
    single_thread_ipc,
)
from repro.pipeline.config import SMTConfig
from repro.trace.workloads import make_workload

CYCLES = 2_500
WARMUP = 500


class TestRunBenchmarks:
    def test_basic_run(self):
        result = run_benchmarks(["gzip"], "ICOUNT", cycles=CYCLES,
                                warmup=WARMUP)
        assert result.policy == "ICOUNT"
        assert result.cycles == CYCLES
        assert result.threads[0].ipc > 0

    def test_policy_tuple_spec(self):
        result = run_benchmarks(["gzip"], ("DCRA", {"activity_window": 64}),
                                cycles=CYCLES, warmup=WARMUP)
        assert result.policy == "DCRA"

    def test_same_seed_reproducible(self):
        a = run_benchmarks(["twolf"], "ICOUNT", cycles=CYCLES, warmup=WARMUP,
                           seed=5)
        b = run_benchmarks(["twolf"], "ICOUNT", cycles=CYCLES, warmup=WARMUP,
                           seed=5)
        assert a.threads[0].ipc == b.threads[0].ipc

    def test_run_workload_wrapper(self):
        workload = make_workload(2, "MIX", 1)
        result = run_workload(workload, "SRA", cycles=CYCLES, warmup=WARMUP)
        assert [t.benchmark for t in result.threads] \
            == list(workload.benchmarks)


class TestSingleThreadBaselines:
    def test_cached(self):
        clear_baseline_cache()
        first = single_thread_ipc("gzip", cycles=CYCLES, warmup=WARMUP)
        second = single_thread_ipc("gzip", cycles=CYCLES, warmup=WARMUP)
        assert first == second

    def test_cache_key_includes_config(self):
        clear_baseline_cache()
        small = SMTConfig(int_iq_size=8)
        a = single_thread_ipc("gzip", cycles=CYCLES, warmup=WARMUP)
        b = single_thread_ipc("gzip", small, cycles=CYCLES, warmup=WARMUP)
        assert a != b


class TestEvaluateWorkload:
    def test_multiple_policies(self):
        workload = make_workload(2, "MIX", 1)
        evaluations = evaluate_workload(workload, ["ICOUNT", "SRA"],
                                        cycles=CYCLES, warmup=WARMUP)
        assert set(evaluations) == {"ICOUNT", "SRA"}
        for evaluation in evaluations.values():
            assert evaluation.throughput > 0
            assert evaluation.hmean > 0


class TestHelpers:
    def test_improvement_pct(self):
        assert improvement_pct(1.1, 1.0) == pytest.approx(10.0)
        assert improvement_pct(0.9, 1.0) == pytest.approx(-10.0)

    def test_improvement_pct_degrades_on_zero_baseline(self):
        import math

        with pytest.warns(RuntimeWarning):
            assert math.isnan(improvement_pct(1.0, 0.0))

    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_geometric_mean_degrades_on_zero_value(self):
        with pytest.warns(RuntimeWarning):
            assert geometric_mean([1.0, 0.0]) == 0.0


class TestDegenerateWindows:
    """A window too short to commit anything must not crash evaluation."""

    def test_one_cycle_window_evaluates(self):
        workload = make_workload(2, "MEM", 1)
        with pytest.warns(RuntimeWarning):
            evaluations = evaluate_workload(workload, ["ICOUNT"],
                                            cycles=1, warmup=0)
        evaluation = evaluations["ICOUNT"]
        assert evaluation.hmean == 0.0
        assert evaluation.throughput == 0.0
        assert all(t.ipc == 0.0 for t in evaluation.result.threads)

    def test_one_cycle_window_run_benchmarks(self):
        result = run_benchmarks(["gzip"], "ICOUNT", cycles=1, warmup=0)
        assert result.threads[0].committed == 0
        assert result.threads[0].ipc == 0.0
