"""End-to-end behavioural shape tests.

Fast (but not instant) checks that the simulated system exhibits the
qualitative behaviours the paper's argument rests on.  Quantitative
paper-vs-measured comparisons live in benchmarks/ and EXPERIMENTS.md.
"""

import pytest

from repro import (
    SMTConfig,
    SMTProcessor,
    get_profile,
    make_policy,
    run_benchmarks,
)

CYCLES = 6_000
WARMUP = 1_500


def ipc_of(benchmark, **kwargs):
    result = run_benchmarks([benchmark], "ICOUNT", cycles=CYCLES,
                            warmup=WARMUP, **kwargs)
    return result.threads[0].ipc


class TestBenchmarkCharacter:
    def test_mem_benchmarks_slower_than_ilp(self):
        assert ipc_of("mcf") < ipc_of("gzip")
        assert ipc_of("art") < ipc_of("eon")

    def test_mem_benchmarks_mostly_slow_phase(self):
        result = run_benchmarks(["mcf"], "ICOUNT", cycles=CYCLES,
                                warmup=WARMUP)
        assert result.threads[0].slow_cycle_frac > 0.7

    def test_ilp_benchmarks_mostly_fast_phase(self):
        result = run_benchmarks(["eon"], "ICOUNT", cycles=CYCLES,
                                warmup=WARMUP)
        assert result.threads[0].slow_cycle_frac < 0.7

    def test_l2_missrate_ordering_matches_table3(self):
        rates = {}
        for name in ("mcf", "swim", "twolf", "gzip"):
            result = run_benchmarks([name], "ICOUNT", cycles=CYCLES,
                                    warmup=WARMUP)
            rates[name] = result.threads[0].l2_missrate_pct
        assert rates["mcf"] > rates["swim"] > rates["twolf"] > rates["gzip"]

    def test_fp_benchmark_uses_fp_resources(self):
        from repro.pipeline.resources import Resource
        processor = SMTProcessor(SMTConfig(), [get_profile("swim")],
                                 make_policy("ICOUNT"), seed=1)
        fp_seen = [0]
        processor.cycle_hooks.append(
            lambda p: fp_seen.__setitem__(
                0, fp_seen[0] + p.resources.usage(Resource.IQ_FP, 0)))
        processor.run(2000)
        assert fp_seen[0] > 0

    def test_int_benchmark_never_uses_fp_resources(self):
        from repro.pipeline.resources import Resource
        processor = SMTProcessor(SMTConfig(), [get_profile("gzip")],
                                 make_policy("ICOUNT"), seed=1)
        processor.run(2000)
        assert processor.resources.usage(Resource.IQ_FP, 0) == 0
        assert processor.resources.usage(Resource.REG_FP, 0) == 0


class TestMonopolizationStory:
    """The paper's motivating observation: under ICOUNT a missing thread
    camps on shared resources; DCRA caps it and the co-runner speeds up."""

    def _gzip_ipc_with_mcf(self, policy):
        result = run_benchmarks(["mcf", "gzip"], policy, cycles=CYCLES,
                                warmup=WARMUP)
        return result.threads[1].ipc

    def test_dcra_protects_fast_thread(self):
        assert (self._gzip_ipc_with_mcf("DCRA")
                > self._gzip_ipc_with_mcf("ICOUNT") * 1.1)

    def test_mcf_holds_fewer_registers_under_dcra(self):
        from repro.pipeline.resources import Resource

        def avg_mcf_regs(policy_name):
            processor = SMTProcessor(
                SMTConfig(),
                [get_profile("mcf"), get_profile("gzip")],
                make_policy(policy_name), seed=1)
            total = [0]
            processor.cycle_hooks.append(
                lambda p: total.__setitem__(
                    0, total[0] + p.resources.usage(Resource.REG_INT, 0)))
            processor.run(CYCLES)
            return total[0] / CYCLES

        assert avg_mcf_regs("DCRA") < avg_mcf_regs("ICOUNT") * 0.95


class TestPolicyCharacter:
    def test_dg_starves_memory_thread(self):
        """DG gates on every L1 miss — harsher on MEM threads than DCRA."""
        dg = run_benchmarks(["mcf", "gzip"], "DG", cycles=CYCLES,
                            warmup=WARMUP)
        dcra = run_benchmarks(["mcf", "gzip"], "DCRA", cycles=CYCLES,
                              warmup=WARMUP)
        assert dg.threads[0].ipc <= dcra.threads[0].ipc * 1.2

    def test_flush_increases_frontend_activity(self):
        """FLUSH-style squashes force refetching (Section 5.2's 2x)."""
        flush = run_benchmarks(["mcf", "twolf"], "FLUSH", cycles=CYCLES,
                               warmup=WARMUP)
        stall = run_benchmarks(["mcf", "twolf"], "STALL", cycles=CYCLES,
                               warmup=WARMUP)
        assert flush.fetch_overhead() > stall.fetch_overhead()

    def test_memory_latency_hurts_icount_more_than_dcra(self):
        def throughput(policy, latency):
            config = SMTConfig().with_latencies(latency, 20)
            result = run_benchmarks(["mcf", "gzip"], policy, config,
                                    cycles=CYCLES, warmup=WARMUP)
            return result.throughput

        icount_drop = throughput("ICOUNT", 100) - throughput("ICOUNT", 500)
        dcra_drop = throughput("DCRA", 100) - throughput("DCRA", 500)
        assert dcra_drop <= icount_drop + 0.3

    def test_sra_insulates_threads(self):
        """Under SRA, adding a hostile co-runner cannot starve a thread
        below a reasonable fraction of its half-machine speed."""
        result = run_benchmarks(["gzip", "mcf"], "SRA", cycles=CYCLES,
                                warmup=WARMUP)
        alone = ipc_of("gzip")
        assert result.threads[0].ipc > 0.3 * alone


class TestMemoryParallelism:
    def test_overlapping_misses_measured(self):
        result = run_benchmarks(["swim"], "ICOUNT", cycles=CYCLES,
                                warmup=WARMUP)
        assert result.avg_l2_overlap > 1.0

    def test_perfect_dl1_removes_overlap(self):
        config = SMTConfig(perfect_dl1=True)
        result = run_benchmarks(["swim"], "ICOUNT", config, cycles=CYCLES,
                                warmup=WARMUP)
        assert result.avg_l2_overlap == pytest.approx(0.0)
