"""Tests for the persistent simulation broker and its executor client.

The service contract: any number of concurrent clients submitting
through one broker get results bitwise-identical to a serial run; the
queue is fair, bounded (clear rejection, never unbounded buffering) and
durable; workers join and leave mid-sweep without losing jobs; warm
submissions are answered from the result store with zero simulations;
and SIGTERM/SIGINT never kill a worker mid-pickle.
"""

import json
import os
import pickle
import signal
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.harness.broker import (
    Broker,
    BrokerClient,
    BrokerRejection,
    FairQueue,
    QueueEntry,
    job_from_spec,
    parse_broker_address,
)
from repro.harness.engine import SimJob, run_job, run_jobs
from repro.harness.executors import (
    BrokerExecutor,
    EXECUTOR_NAMES,
    RemoteExecutor,
    make_executor,
)
from repro.harness.remote_worker import (
    GracefulExit,
    WorkerState,
    install_signal_handlers,
    resolve_timeout,
    spawn_loopback_workers,
)
from repro.harness.results import result_store, result_to_payload

CYCLES = 1_000
WARMUP = 250


def small_jobs():
    return [
        SimJob(("gzip",), "ICOUNT", None, CYCLES, WARMUP, seed=3),
        SimJob(("mcf", "gzip"), "DCRA", None, CYCLES, WARMUP, seed=3),
        SimJob(("twolf",), ("DCRA", {"activity_window": 64}), None,
               CYCLES, WARMUP, seed=5),
        SimJob(("gzip", "twolf"), "FLUSH++", None, CYCLES, WARMUP, seed=7),
    ]


@pytest.fixture(scope="module")
def broker():
    """One persistent broker + two workers shared by the module."""
    with Broker(spawn_workers=2, durable=False) as instance:
        yield instance


@pytest.fixture(scope="module")
def broker_executor(broker):
    with BrokerExecutor(broker.address, timeout=120.0) as executor:
        yield executor


@pytest.fixture(scope="module")
def reference_results():
    return [r for r in run_jobs(small_jobs(), max_workers=1)]


def _square(x):
    return x * x


def _boom(x):
    raise ValueError(f"task {x} exploded")


def _marked_sleep(arg):
    """Touch a marker file, then sleep — lets tests signal mid-task."""
    marker, delay = arg
    Path(marker).touch()
    time.sleep(delay)
    return "done"


def _kill_worker_once(arg):
    """Die abruptly in exactly one worker, succeed everywhere else.

    The O_EXCL create makes the death unique even when several workers
    race: the one that wins the create dies mid-task (its task must be
    requeued), every other call sees the marker and succeeds.
    """
    marker, value = arg
    try:
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return value * 2
    os.close(fd)
    os._exit(1)


def _entry(client, seq, priority=0, kind="task", attempts=0):
    return QueueEntry(job_id=f"{client}{seq}", client=client, kind=kind,
                      payload=b"x", priority=priority, seq=seq,
                      attempts=attempts)


class TestFairQueue:
    """The scheduler: priority, per-client fairness, bounded, requeue."""

    def test_higher_priority_dispatches_first(self):
        q = FairQueue()
        q.push(_entry("a", 0, priority=0))
        q.push(_entry("a", 1, priority=5))
        q.push(_entry("b", 2, priority=1))
        assert [q.pop().job_id for _ in range(3)] == ["a1", "b2", "a0"]
        assert q.pop() is None

    def test_round_robin_between_clients_at_equal_priority(self):
        q = FairQueue()
        for seq in range(6):
            q.push(_entry("hog", seq))
        q.push(_entry("small", 100))
        q.push(_entry("small", 101))
        order = [q.pop().client for _ in range(len(q))]
        # The small client's two entries are served within the first
        # four dispatches — the hog's backlog cannot starve it.
        assert order[:4].count("small") == 2

    def test_fairness_under_saturated_queue(self):
        # A saturated queue (at the bound) still round-robins: the
        # late-arriving client's jobs run long before the hog drains.
        q = FairQueue(max_pending=100)
        for seq in range(95):
            q.push(_entry("hog", seq))
        for seq in range(5):
            q.push(_entry("late", 1000 + seq))
        first = [q.pop().client for _ in range(10)]
        assert first.count("late") == 5

    def test_submission_order_within_one_client(self):
        q = FairQueue()
        for seq in (3, 1, 2):
            q.push(_entry("a", seq))
        assert [q.pop().seq for _ in range(3)] == [1, 2, 3]

    def test_bound_rejects_with_clear_error(self):
        q = FairQueue(max_pending=2)
        q.push(_entry("a", 0))
        q.push(_entry("a", 1))
        with pytest.raises(BrokerRejection, match="full"):
            q.push(_entry("a", 2))
        with pytest.raises(BrokerRejection, match="max-queue"):
            q.push(_entry("b", 3))

    def test_requeue_bypasses_the_bound(self):
        # A dispatched-then-requeued entry was already admitted once;
        # backpressure must never lose it.
        q = FairQueue(max_pending=1)
        q.push(_entry("a", 0))
        q.push(_entry("a", 1, attempts=1), requeue=True)
        assert len(q) == 2

    def test_requeued_entry_keeps_its_place(self):
        q = FairQueue()
        q.push(_entry("a", 5))
        q.push(_entry("a", 0, attempts=1), requeue=True)
        assert q.pop().seq == 0

    def test_drop_client_keeps_what_the_predicate_accepts(self):
        q = FairQueue()
        q.push(_entry("a", 0, kind="task"))
        q.push(_entry("a", 1, kind="job"))
        q.push(_entry("b", 2, kind="task"))
        dropped = q.drop_client("a", keep=lambda e: e.kind == "job")
        assert [e.seq for e in dropped] == [0]
        assert len(q) == 2
        assert q.drop_client("missing") == []

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError, match="max_pending"):
            FairQueue(max_pending=0)


class TestBrokerDeterminism:
    """Results through the service are bitwise-identical to serial."""

    def test_broker_executor_matches_serial(self, broker_executor,
                                            reference_results):
        assert run_jobs(small_jobs(), 2, broker_executor) \
            == reference_results

    def test_generic_tasks_route_through(self, broker_executor):
        assert broker_executor.map(_square, range(8)) \
            == [i * i for i in range(8)]

    def test_executor_is_reusable_across_calls(self, broker_executor):
        first = broker_executor.map(_square, range(6))
        second = broker_executor.map(_square, range(6))
        assert first == second == [i * i for i in range(6)]

    def test_task_exception_propagates(self, broker_executor):
        with pytest.raises(RuntimeError, match="broker task failed"):
            broker_executor.map(_boom, [1])

    def test_empty_map(self, broker_executor):
        assert broker_executor.map(_square, []) == []

    def test_concurrent_clients_bitwise_identical(self, broker,
                                                  reference_results):
        """N clients with overlapping sweeps all reassemble serially."""
        outputs = {}
        errors = []

        def client(key: int) -> None:
            try:
                with BrokerExecutor(broker.address,
                                    timeout=120.0) as executor:
                    outputs[key] = run_jobs(small_jobs(), 2, executor)
            except Exception as error:  # noqa: BLE001 - reported below
                errors.append(error)

        threads = [threading.Thread(target=client, args=(key,))
                   for key in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=180.0)
        assert not errors
        assert len(outputs) == 3
        for key in range(3):
            assert outputs[key] == reference_results

    def test_progress_streams_back_per_client(self, broker_executor):
        job = SimJob(("gzip",), "ICOUNT", None, CYCLES, WARMUP, seed=11,
                     interval_cycles=250)
        events = []
        run_jobs([job], 2, broker_executor,
                 progress=lambda index, event: events.append(
                     (index, event)))
        assert events
        assert all(index == 0 for index, _ in events)
        assert events[-1][1].cycles_done == CYCLES


class TestWarmResubmission:
    """A warm resubmission never reaches a worker (store-served)."""

    def test_zero_simulations_on_warm_resubmit(self, broker,
                                               broker_executor,
                                               reference_results):
        cold = run_jobs(small_jobs(), 2, broker_executor, reuse="off")
        before = broker.status()["stats"]
        warm = run_jobs(small_jobs(), 2, broker_executor, reuse="off")
        after = broker.status()["stats"]
        assert cold == warm == reference_results
        assert after["dispatched"] == before["dispatched"], \
            "warm resubmission must not dispatch any simulation"
        assert after["store_hits"] - before["store_hits"] \
            == len(small_jobs())

    def test_second_client_is_warm_too(self, broker, broker_executor,
                                       reference_results):
        jobs = [small_jobs()[0]]
        run_jobs(jobs, 2, broker_executor, reuse="off")
        before = broker.status()["stats"]
        with BrokerExecutor(broker.address, timeout=120.0) as other:
            assert run_jobs(jobs, 2, other, reuse="off") \
                == reference_results[:1]
        after = broker.status()["stats"]
        assert after["dispatched"] == before["dispatched"]


class TestWorkerChurn:
    """Workers join and leave mid-sweep without losing jobs."""

    def test_dead_worker_requeues_without_job_loss(self, tmp_path):
        marker = str(tmp_path / "killed-once")
        with Broker(spawn_workers=2, durable=False) as broker:
            with BrokerExecutor(broker.address, timeout=120.0) as executor:
                results = executor.map(
                    _kill_worker_once, [(marker, v) for v in range(6)])
            assert results == [v * 2 for v in range(6)]
            stats = broker.status()["stats"]
            assert stats["requeued"] >= 1
            assert stats["workers_left"] >= 1

    def test_worker_joins_mid_run(self):
        with Broker(spawn_workers=0, durable=False) as broker:
            with BrokerExecutor(broker.address, timeout=120.0) as executor:
                collector = {}

                def sweep() -> None:
                    collector["results"] = executor.map(
                        _square, range(5))

                thread = threading.Thread(target=sweep)
                thread.start()
                # Nothing can run yet — then a worker connects, exactly
                # as an operator adding capacity mid-sweep would.
                time.sleep(0.3)
                assert "results" not in collector
                broker._processes.extend(
                    spawn_loopback_workers(broker.address, 1))
                thread.join(timeout=120.0)
                assert collector["results"] == [i * i for i in range(5)]


class TestBackpressure:
    """A full queue rejects with a clear error instead of buffering."""

    def test_submission_past_the_bound_is_rejected(self):
        with Broker(spawn_workers=0, max_queue=2, durable=False) as broker:
            with BrokerClient(broker.address) as client:
                routes = [client.open_route(f"s{i}") for i in range(3)]
                for i in range(3):
                    client.submit(f"s{i}", "task",
                                  payload=pickle.dumps((_square, i)))
                message = routes[2].get(timeout=10.0)
                assert message[0] == "rejected"
                assert "full" in message[2]
                assert broker.status()["stats"]["rejected"] == 1

    def test_rejection_surfaces_through_the_executor(self):
        with Broker(spawn_workers=0, max_queue=1, durable=False) as broker:
            with BrokerExecutor(broker.address, timeout=30.0) as executor:
                with pytest.raises(RuntimeError, match="rejected"):
                    executor.map(_square, range(4))


class TestDurableSpool:
    """Accepted jobs survive a broker restart."""

    def test_unfinished_jobs_recover_across_restart(self, tmp_path):
        spool = tmp_path / "spool"
        job = SimJob(("gzip",), "ICOUNT", None, CYCLES, WARMUP, seed=9)
        first = Broker(spawn_workers=0, spool_dir=spool).start()
        try:
            with BrokerClient(first.address) as client:
                client.open_route("s1")
                client.submit("s1", "job", job=job)
                deadline = time.monotonic() + 10.0
                while not list(spool.glob("*.pkl")):
                    assert time.monotonic() < deadline
                    time.sleep(0.05)
        finally:
            first.stop()
        assert len(list(spool.glob("*.pkl"))) == 1

        second = Broker(spawn_workers=1, spool_dir=spool).start()
        try:
            assert second.status()["stats"]["recovered"] == 1
            deadline = time.monotonic() + 120.0
            while result_store.get(job) is None:
                assert time.monotonic() < deadline, \
                    "recovered job never completed"
                time.sleep(0.1)
            assert result_store.get(job) == run_job(job)
            assert not list(spool.glob("*.pkl"))
        finally:
            second.stop()

    def test_completed_jobs_leave_no_spool_behind(self, tmp_path):
        spool = tmp_path / "spool"
        job = SimJob(("gzip",), "ICOUNT", None, CYCLES, WARMUP, seed=10)
        with Broker(spawn_workers=1, spool_dir=spool) as broker:
            with BrokerExecutor(broker.address, timeout=120.0) as executor:
                executor.map(run_job, [job])
            assert not list(spool.glob("*.pkl"))


class TestHTTPFacade:
    """POST /submit, GET /status/<job>, GET /result/<job>."""

    @pytest.fixture()
    def http_broker(self):
        with Broker(spawn_workers=1, http_port=0, durable=False) as broker:
            yield broker, "http://%s:%d" % broker.http_address

    @staticmethod
    def _post(url: str, spec: dict) -> dict:
        request = urllib.request.Request(
            url + "/submit", data=json.dumps(spec).encode(),
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(request) as reply:
            return json.load(reply)

    def test_submit_poll_result_round_trip(self, http_broker):
        broker, url = http_broker
        spec = {"benchmarks": "gzip+twolf", "policy": "ICOUNT",
                "cycles": CYCLES, "warmup": WARMUP, "seed": 1}
        record = self._post(url, spec)
        assert record["state"] in ("queued", "running", "done")
        deadline = time.monotonic() + 120.0
        while True:
            with urllib.request.urlopen(
                    f"{url}/status/{record['job']}") as reply:
                status = json.load(reply)
            if status["state"] in ("done", "failed"):
                break
            assert time.monotonic() < deadline
            time.sleep(0.1)
        assert status["state"] == "done"
        with urllib.request.urlopen(
                f"{url}/result/{record['job']}") as reply:
            payload = json.load(reply)
        expected = run_job(job_from_spec(spec))
        assert payload["result"] == result_to_payload(expected)
        # Resubmission is answered from the store before any queueing.
        warm = self._post(url, spec)
        assert warm["state"] == "done" and warm["source"] == "store"

    def test_unknown_job_is_404(self, http_broker):
        _, url = http_broker
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{url}/status/nope")
        assert excinfo.value.code == 404

    def test_malformed_spec_is_400(self, http_broker):
        _, url = http_broker
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._post(url, {"bogus": 1})
        assert excinfo.value.code == 400

    def test_broker_status_endpoint(self, http_broker):
        broker, url = http_broker
        deadline = time.monotonic() + 30.0
        while True:
            with urllib.request.urlopen(f"{url}/status") as reply:
                status = json.load(reply)
            if status["workers"] == 1:
                break
            assert time.monotonic() < deadline, "worker never connected"
            time.sleep(0.05)
        assert status["stats"]["submitted"] == 0


class TestJobSpec:
    def test_job_from_spec_round_trip(self):
        job = job_from_spec({"benchmarks": ["gzip", "twolf"],
                             "policy": "DCRA", "cycles": 2_000,
                             "warmup": 500, "seed": 4})
        assert job == SimJob(("gzip", "twolf"), "DCRA", None, 2_000, 500, 4)

    def test_job_from_spec_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown submission field"):
            job_from_spec({"benchmarks": ["gzip"], "cyclez": 10})

    def test_job_from_spec_needs_benchmarks(self):
        with pytest.raises(ValueError, match="benchmarks"):
            job_from_spec({"policy": "DCRA"})

    def test_parse_broker_address(self):
        assert parse_broker_address("10.0.0.1:7340") == ("10.0.0.1", 7340)
        with pytest.raises(ValueError, match="HOST:PORT"):
            parse_broker_address("no-port")


class TestGracefulSignals:
    """SIGTERM/SIGINT finish the in-flight task, then deregister."""

    @pytest.fixture()
    def handlers(self):
        state = WorkerState()
        previous = install_signal_handlers(state)
        try:
            yield state
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)

    def test_idle_worker_exits_immediately(self, handlers):
        with pytest.raises(GracefulExit):
            signal.raise_signal(signal.SIGTERM)
        assert handlers.stop_requested

    def test_busy_worker_latches_and_finishes(self, handlers):
        handlers.busy = True
        signal.raise_signal(signal.SIGTERM)  # no exception: keep working
        assert handlers.stop_requested
        with pytest.raises(GracefulExit):  # second signal forces out
            signal.raise_signal(signal.SIGTERM)

    def test_graceful_exit_is_not_swallowed_by_task_guards(self):
        # The task runner's broad `except Exception` must never eat a
        # shutdown request raised inside user simulation code.
        assert not issubclass(GracefulExit, Exception)

    def test_sigterm_mid_task_delivers_result_then_exits(self, tmp_path):
        marker = tmp_path / "started"
        with Broker(spawn_workers=1, durable=False) as broker:
            worker = broker._processes[0]
            with BrokerClient(broker.address) as client:
                route = client.open_route("sig")
                client.submit("sig", "task", payload=pickle.dumps(
                    (_marked_sleep, (str(marker), 1.0))))
                deadline = time.monotonic() + 30.0
                while not marker.exists():
                    assert time.monotonic() < deadline, \
                        "task never started"
                    time.sleep(0.02)
                worker.send_signal(signal.SIGTERM)
                message = route.get(timeout=30.0)
            # The in-flight task's result arrived intact...
            assert message[0] == "result"
            assert message[2] is True and message[3] == "done"
            # ...and the worker deregistered cleanly, exit code 0.
            assert worker.wait(timeout=10.0) == 0

    def test_sigterm_while_idle_exits_cleanly(self):
        with Broker(spawn_workers=1, durable=False) as broker:
            worker = broker._processes[0]
            deadline = time.monotonic() + 15.0
            while broker.status()["workers"] < 1:
                assert time.monotonic() < deadline
                time.sleep(0.05)
            worker.send_signal(signal.SIGTERM)
            assert worker.wait(timeout=10.0) == 0


class TestTimeoutConfiguration:
    """Satellite: fleet timeouts are configurable and validated."""

    def test_resolve_timeout_precedence(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_TIMEOUT", "42.5")
        assert resolve_timeout(7.0, "REPRO_TEST_TIMEOUT", 1.0, "t") == 7.0
        assert resolve_timeout(None, "REPRO_TEST_TIMEOUT", 1.0, "t") == 42.5
        monkeypatch.delenv("REPRO_TEST_TIMEOUT")
        assert resolve_timeout(None, "REPRO_TEST_TIMEOUT", 1.0, "t") == 1.0

    @pytest.mark.parametrize("value", [0, -1, -0.5])
    def test_explicit_nonpositive_is_an_error(self, value):
        with pytest.raises(ValueError, match="positive"):
            resolve_timeout(value, "REPRO_TEST_TIMEOUT", 1.0, "idle timeout")

    def test_env_nonpositive_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_REMOTE_IDLE_TIMEOUT", "0")
        with pytest.raises(ValueError, match="REPRO_REMOTE_IDLE_TIMEOUT"):
            RemoteExecutor(spawn_workers=0)

    def test_env_junk_is_an_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_REMOTE_HANDSHAKE_TIMEOUT", "soon")
        with pytest.raises(ValueError, match="not a number"):
            RemoteExecutor(spawn_workers=0)

    def test_remote_executor_reads_env_timeouts(self, monkeypatch):
        monkeypatch.setenv("REPRO_REMOTE_IDLE_TIMEOUT", "123")
        monkeypatch.setenv("REPRO_REMOTE_HANDSHAKE_TIMEOUT", "4.5")
        with RemoteExecutor(spawn_workers=0) as executor:
            assert executor.timeout == 123.0
            assert executor.handshake_timeout == 4.5

    def test_explicit_arguments_beat_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_REMOTE_IDLE_TIMEOUT", "123")
        with RemoteExecutor(spawn_workers=0, timeout=9.0) as executor:
            assert executor.timeout == 9.0

    def test_make_executor_knows_broker(self, monkeypatch):
        monkeypatch.delenv("REPRO_BROKER", raising=False)
        assert "broker" in EXECUTOR_NAMES
        with pytest.raises(ValueError, match="broker"):
            make_executor("broker", 2)  # no address anywhere

    def test_make_executor_passes_timeouts_through(self):
        with make_executor("remote", 0,
                           remote_idle_timeout=55.0) as executor:
            assert executor.timeout == 55.0
