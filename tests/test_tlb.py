"""Unit tests for the data TLB."""

import pytest

from repro.mem.tlb import TranslationBuffer


class TestTLB:
    def test_miss_then_hit(self):
        tlb = TranslationBuffer(entries=4, page_bytes=8192)
        assert not tlb.access(0x0)
        assert tlb.access(0x1000)  # same 8KB page
        assert not tlb.access(0x2000)  # next page

    def test_lru_eviction(self):
        tlb = TranslationBuffer(entries=2, page_bytes=8192)
        tlb.access(0 * 8192)
        tlb.access(1 * 8192)
        tlb.access(0 * 8192)       # page 0 now MRU
        tlb.access(2 * 8192)       # evicts page 1
        assert tlb.access(0 * 8192)
        assert not tlb.access(1 * 8192)

    def test_miss_rate(self):
        tlb = TranslationBuffer(entries=4)
        tlb.access(0)
        tlb.access(0)
        assert tlb.miss_rate() == pytest.approx(0.5)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TranslationBuffer(entries=0)
        with pytest.raises(ValueError):
            TranslationBuffer(page_bytes=3000)
