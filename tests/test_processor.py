"""Integration tests for the SMT pipeline."""

import pytest

from repro.isa.instruction import ST_COMMITTED, ST_SQUASHED
from repro.pipeline.config import SMTConfig
from repro.pipeline.processor import SMTProcessor
from repro.policies.basic import IcountPolicy
from repro.policies.registry import make_policy
from repro.trace.profiles import get_profile


def build(benchmarks=("gzip",), policy=None, config=None, seed=1):
    return SMTProcessor(config or SMTConfig(),
                        [get_profile(b) for b in benchmarks],
                        policy or IcountPolicy(), seed=seed)


class TestTracePruneSchedule:
    def test_no_prune_at_cycle_zero(self, monkeypatch):
        """Cycle 0 has no history; the prune pass must not run."""
        from repro.pipeline import processor as processor_module
        from repro.pipeline.thread import ThreadContext

        calls = []
        monkeypatch.setattr(ThreadContext, "prune_trace",
                            lambda self: calls.append(self.tid))
        processor = build()
        processor.step()  # cycle 0
        assert calls == []
        processor.cycle = processor_module._PRUNE_INTERVAL
        processor.step()  # first interval boundary: prune runs
        assert calls == [0]


class TestBasicExecution:
    def test_single_thread_commits(self):
        processor = build()
        processor.run(2000)
        assert processor.threads[0].stats.committed > 1000

    def test_multi_thread_all_progress(self):
        processor = build(("gzip", "twolf", "eon"))
        processor.run(4000)
        for thread in processor.threads:
            assert thread.stats.committed > 50

    def test_cycle_counter_advances(self):
        processor = build()
        processor.run(123)
        assert processor.cycle == 123

    def test_empty_profiles_rejected(self):
        with pytest.raises(ValueError):
            SMTProcessor(SMTConfig(), [], IcountPolicy())

    def test_run_until_commits(self):
        processor = build()
        processor.run_until_commits(500)
        assert processor.threads[0].stats.committed >= 500


class TestDeterminism:
    def test_identical_runs_identical_stats(self):
        a = build(("gzip", "mcf"), seed=9)
        b = build(("gzip", "mcf"), seed=9)
        a.run(3000)
        b.run(3000)
        for thread_a, thread_b in zip(a.threads, b.threads):
            assert thread_a.stats.committed == thread_b.stats.committed
            assert thread_a.stats.fetched == thread_b.stats.fetched
            assert thread_a.stats.squashed == thread_b.stats.squashed

    def test_different_seeds_differ(self):
        a = build(("gzip",), seed=1)
        b = build(("gzip",), seed=2)
        a.run(3000)
        b.run(3000)
        assert a.threads[0].stats.committed != b.threads[0].stats.committed


class TestProgramOrder:
    def test_commits_in_trace_order(self):
        processor = build(("twolf",))
        committed_indices = []
        original = processor._commit_op

        def spy(op):
            if not op.wrong_path:
                committed_indices.append(op.trace_index)
            original(op)

        processor._commit_op = spy
        processor.run(3000)
        assert committed_indices == sorted(committed_indices)
        # In-order commit per thread never skips an index.
        assert committed_indices == list(range(len(committed_indices)))

    def test_wrong_path_never_commits(self):
        processor = build(("twolf",))
        original = processor._commit_op

        def spy(op):
            assert not op.wrong_path
            original(op)

        processor._commit_op = spy
        processor.run(3000)


class TestResourceInvariants:
    @pytest.mark.parametrize("benchmarks", [
        ("gzip",), ("mcf", "twolf"), ("swim", "gzip", "art", "gcc"),
    ])
    def test_counters_consistent_throughout(self, benchmarks):
        processor = build(benchmarks)
        for _ in range(20):
            processor.run(150)
            processor.resources.check_consistency()
            resources = processor.resources
            for resource, total in resources.totals.items():
                assert 0 <= resources.used[resource] <= total
            assert 0 <= resources.rob_used <= resources.rob_size

    def test_everything_drains_eventually(self):
        """Pending miss counters never go negative."""
        processor = build(("mcf", "art"))
        for _ in range(15):
            processor.run(200)
            for thread in processor.threads:
                assert thread.pending_l1d >= 0
                assert thread.pending_l2 >= 0
                assert thread.detected_l2 >= 0


class TestSquash:
    def test_squash_after_releases_resources(self):
        processor = build(("twolf",))
        processor.run(1500)
        thread = processor.threads[0]
        if not thread.rob:
            pytest.skip("empty ROB at sample point")
        boundary = thread.rob[0]
        squashed = processor.squash_after(boundary)
        processor.resources.check_consistency()
        assert len(thread.rob) == 1
        assert squashed >= 0
        for op in list(thread.rob)[1:]:
            assert op.status == ST_SQUASHED

    def test_squash_resets_wrong_path_state(self):
        processor = build(("twolf",))
        processor.run(1500)
        thread = processor.threads[0]
        if not thread.rob:
            pytest.skip("empty ROB at sample point")
        processor.squash_after(thread.rob[0])
        assert not thread.in_wrong_path
        assert thread.mispredict_op is None

    def test_execution_continues_after_squash(self):
        processor = build(("twolf",))
        processor.run(1500)
        thread = processor.threads[0]
        if thread.rob:
            boundary = thread.rob[0]
            processor.squash_after(boundary)
            thread.rewind_to(boundary.trace_index + 1,
                             boundary.static.pc + 4)
        before = thread.stats.committed
        processor.run(1500)
        assert thread.stats.committed > before


class TestStatsReset:
    def test_reset_zeroes_stats_keeps_state(self):
        processor = build(("gzip",))
        processor.run(1000)
        processor.reset_stats()
        assert processor.threads[0].stats.committed == 0
        assert processor.stat_cycles == 0
        processor.run(500)
        assert processor.stat_cycles == 500
        assert processor.threads[0].stats.committed > 0


class TestWrongPath:
    def test_wrong_path_instructions_fetched(self):
        processor = build(("twolf",))  # branchy benchmark
        processor.run(3000)
        assert processor.threads[0].stats.fetched_wrong_path > 0

    def test_squashed_includes_wrong_path(self):
        processor = build(("twolf",))
        processor.run(3000)
        stats = processor.threads[0].stats
        assert stats.squashed >= stats.fetched_wrong_path * 0.5


class TestCycleHooks:
    def test_hooks_called_every_cycle(self):
        processor = build()
        calls = []
        processor.cycle_hooks.append(lambda proc: calls.append(proc.cycle))
        processor.run(50)
        assert len(calls) == 50


class TestPerfectDl1:
    def test_no_data_misses_with_perfect_cache(self):
        config = SMTConfig(perfect_dl1=True)
        processor = build(("mcf",), config=config)
        processor.run(2000)
        assert processor.hierarchy.thread_stats[0].l1d_misses == 0
        assert processor.threads[0].stats.slow_cycles == 0

    def test_perfect_dl1_raises_mem_ipc(self):
        slow = build(("mcf",), seed=4)
        fast = build(("mcf",), config=SMTConfig(perfect_dl1=True), seed=4)
        slow.run(4000)
        fast.run(4000)
        assert (fast.threads[0].stats.committed
                > 2 * slow.threads[0].stats.committed)
