"""Tests for the degenerate-case guard (AdaptiveDcraPolicy)."""

import pytest

from repro.core.adaptive import AdaptiveConfig, AdaptiveDcraPolicy
from repro.core.dcra import DcraConfig
from repro.pipeline.config import SMTConfig
from repro.pipeline.processor import SMTProcessor
from repro.pipeline.resources import Resource
from repro.trace.profiles import get_profile


def build(benchmarks=("mcf", "gzip"), config=None, seed=1):
    policy = AdaptiveDcraPolicy(config or AdaptiveConfig(window=500))
    processor = SMTProcessor(SMTConfig(),
                             [get_profile(b) for b in benchmarks],
                             policy, seed=seed)
    return processor, policy


class TestConfig:
    def test_defaults(self):
        config = AdaptiveConfig()
        assert config.window == 2048
        assert config.settle_windows == 4
        assert isinstance(config.dcra, DcraConfig)


class TestProbing:
    def test_starts_unclamped(self):
        _, policy = build()
        assert not policy.is_clamped(0)
        assert not policy.is_clamped(1)

    def test_cap_for_clamped_thread_is_equal_split(self):
        processor, policy = build()
        processor.threads[0].pending_l1d = 1
        policy.begin_cycle(0)
        full_cap = policy._caps[Resource.IQ_LS]
        policy._clamped[0] = True
        assert policy.cap_for(Resource.IQ_LS, 0) \
            == policy._equal_split[Resource.IQ_LS]
        assert policy.cap_for(Resource.IQ_LS, 0) <= full_cap
        assert policy.cap_for(Resource.IQ_LS, 1) == full_cap

    def test_fast_thread_never_clamped(self):
        # With a perfect L1D no thread is ever slow, so probing never
        # applies and nobody gets clamped.
        policy = AdaptiveDcraPolicy(AdaptiveConfig(window=500))
        processor = SMTProcessor(
            SMTConfig(perfect_dl1=True),
            [get_profile("gzip"), get_profile("eon")], policy, seed=1)
        processor.run(3000)
        assert not policy.is_clamped(0)
        assert not policy.is_clamped(1)

    def test_probe_state_machine_cycles(self):
        processor, policy = build(("mcf", "gzip"))
        processor.run(4000)  # 8 windows of 500 cycles
        # mcf is persistently slow: it must have been probed (borrow ->
        # clamp -> verdict) at least once by now.
        assert policy._state[0] in (0, 1, 2)
        assert policy._window_start_commits[0] \
            == processor.threads[0].stats.committed or True

    def test_runs_and_commits(self):
        processor, policy = build()
        processor.run(4000)
        assert all(t.stats.committed > 0 for t in processor.threads)
        processor.resources.check_consistency()

    def test_registry_construction(self):
        from repro.policies.registry import make_policy
        policy = make_policy("DCRA-ADAPT")
        assert policy.name == "DCRA-ADAPT"
        policy = make_policy("DCRA-ADAPT", window=128)
        assert policy.adaptive.window == 128


class TestVerdicts:
    def test_useless_borrowing_gets_clamped(self):
        """Force the A/B rates so borrow mode shows no benefit."""
        processor, policy = build()
        tid = 0
        policy._state[tid] = 1  # PROBE_CLAMP window just ended
        policy._probe_rates[tid][0] = 0.10      # borrow rate
        # Make this window (clamp) produce the same rate.
        policy._window_start_commits[tid] = \
            processor.threads[tid].stats.committed - 50
        policy._window_slow_cycles[tid] = 500   # fully slow window
        policy._end_window()
        assert policy.is_clamped(tid)
        assert policy.clamp_verdicts == 1

    def test_useful_borrowing_stays(self):
        processor, policy = build()
        tid = 0
        policy._state[tid] = 1
        policy._probe_rates[tid][0] = 1.00      # borrowing helped a lot
        policy._window_start_commits[tid] = \
            processor.threads[tid].stats.committed - 50  # clamp rate 0.1
        policy._window_slow_cycles[tid] = 500
        policy._end_window()
        assert not policy.is_clamped(tid)

    def test_verdict_expires_after_settle_windows(self):
        processor, policy = build(
            config=AdaptiveConfig(window=500, settle_windows=1))
        tid = 0
        policy._state[tid] = 2  # SETTLED
        policy._clamped[tid] = True
        policy._settle_left[tid] = 1
        policy._window_slow_cycles[tid] = 500
        policy._end_window()
        assert not policy.is_clamped(tid)
        assert policy._state[tid] == 0  # back to PROBE_BORROW
