"""The vectorized backend: determinism, lane gating, loud fallbacks.

Everything here needs numpy (tier-1 skips the module); the numpy-absent
behaviour of the vectorized backend is pinned in test_batch_gating.py,
which poisons ``sys.modules`` instead.
"""

import pickle
import warnings

import pytest

from repro.harness.engine import (
    SimJob,
    replicate_job,
    run_job,
    run_job_backend,
    run_jobs,
)
from repro.harness.equivalence import (
    EquivalenceCase,
    METRICS,
    run_equivalence,
)

np = pytest.importorskip("numpy")

from repro.batch.core import HeterogeneousBatchError  # noqa: E402
from repro.batch.vectorized import (  # noqa: E402
    VectorizedSimulator,
    fallback_reason,
    vector_key,
    warn_scalar_fallbacks,
)

CYCLES = 1_500
WARMUP = 300


def _job(policy="ICOUNT", benchmarks=("gzip", "mcf"), **kwargs):
    kwargs.setdefault("cycles", CYCLES)
    kwargs.setdefault("warmup", WARMUP)
    return SimJob(tuple(benchmarks), policy, **kwargs)


def _bits(results):
    # Per result, not the list: serial runs share sub-objects the
    # pickle memo folds, a worker round-trip unshares them — same
    # values, different list-level bytes.
    return [pickle.dumps(r) for r in results]


# -- determinism ------------------------------------------------------------

def test_vectorized_run_is_deterministic():
    jobs = replicate_job(_job(policy="DCRA"), 4)
    first = VectorizedSimulator(jobs).run()
    second = VectorizedSimulator(jobs).run()
    assert _bits(first) == _bits(second)


def test_vectorized_engine_deterministic_across_worker_counts():
    jobs = [_job(seed=s) for s in (1, 2, 3, 4)]
    serial = run_jobs(jobs, backend="vectorized")
    parallel = run_jobs(jobs, 2, backend="vectorized")
    assert _bits(serial) == _bits(parallel)


def test_vectorized_differs_from_scalar_but_is_sane():
    """Relaxed, not bitwise: the numpy streams draw differently from
    the per-thread ``random.Random`` ones, so bytes differ — the
    *distributions* matching is the harness's job, not this test's."""
    job = _job(seed=7)
    scalar = run_job(job)
    vectorized = run_jobs([job], backend="vectorized")[0]
    assert pickle.dumps(scalar) != pickle.dumps(vectorized)
    assert vectorized.cycles == scalar.cycles
    assert len(vectorized.threads) == len(scalar.threads)
    assert all(t.ipc > 0 for t in vectorized.threads)


# -- lane gating ------------------------------------------------------------

def test_fallback_reasons():
    from repro.harness.warmup import parse_warmup_argument

    assert fallback_reason(_job()) is None
    assert "interval" in fallback_reason(_job(interval_cycles=500))
    assert "checkpoint" in fallback_reason(_job(checkpoint="auto"))
    assert "warm-up" in fallback_reason(
        _job(warmup=parse_warmup_argument("auto")))


def test_vector_key_free_and_pinned_fields():
    base = _job(seed=1)
    assert vector_key(base) == vector_key(_job(seed=99, policy="DCRA"))
    assert vector_key(base) != vector_key(_job(cycles=CYCLES + 1))
    assert vector_key(base) != vector_key(_job(benchmarks=("gzip",)))
    assert vector_key(_job(interval_cycles=500)) is None


def test_simulator_rejects_incompatible_lane():
    with pytest.raises(HeterogeneousBatchError, match="interval"):
        VectorizedSimulator([_job(interval_cycles=500)])


def test_warn_scalar_fallbacks_is_loud_and_specific():
    with pytest.warns(RuntimeWarning, match="2 of 3"):
        warn_scalar_fallbacks([_job(), _job(interval_cycles=500),
                               _job(checkpoint="auto")])
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        warn_scalar_fallbacks([_job(), _job()])


def test_engine_routes_unbatchable_job_scalar_with_warning():
    clean, fallback = _job(seed=1), _job(seed=2, interval_cycles=500)
    with pytest.warns(RuntimeWarning, match="interval"):
        results = run_jobs([clean, fallback], backend="vectorized")
    assert len(results) == 2
    # The fallback lane ran the bitwise scalar stepper, byte for byte.
    assert pickle.dumps(results[1]) == pickle.dumps(run_job(fallback))


# -- worker dispatch metadata -----------------------------------------------

def test_run_job_backend_scalar_meta():
    result, meta = run_job_backend((_job(benchmarks=("gzip",)), None))
    assert meta == {"backend": "scalar", "executed_backend": "scalar",
                    "equivalence": "bitwise"}
    assert pickle.dumps(result) == pickle.dumps(
        run_job(_job(benchmarks=("gzip",))))


def test_run_job_backend_vectorized_meta():
    _, meta = run_job_backend((_job(benchmarks=("gzip",)), "vectorized"))
    assert meta["executed_backend"] == "vectorized"
    assert meta["equivalence"] == "vectorized"
    assert "fallback_reason" not in meta


def test_run_job_backend_vectorized_fallback_meta():
    job = _job(benchmarks=("gzip",), interval_cycles=500)
    result, meta = run_job_backend((job, "vectorized"))
    assert meta["backend"] == "vectorized"
    assert meta["executed_backend"] == "scalar"
    # Honest tagging: the fallback's result *is* bitwise.
    assert meta["equivalence"] == "bitwise"
    assert "interval" in meta["fallback_reason"]
    assert pickle.dumps(result) == pickle.dumps(run_job(job))


# -- acceptance, end to end -------------------------------------------------

def test_small_equivalence_fanout_accepts_vectorized():
    """A miniature of the CI acceptance sweep: real scalar vs real
    vectorized on one lineup.  Thresholds at 6 seeds are generous by
    construction, so this pins the plumbing and catches gross bias
    without flaking; the calibrated 16-seed gate runs in CI."""
    cases = [EquivalenceCase("mini-2T", ("gzip", "mcf"), "ICOUNT",
                             cycles=1_200, warmup=200)]
    report = run_equivalence(cases, seeds=6, backend="vectorized")
    assert report["backend"] == "vectorized"
    assert report["accepted"] is True, report
    metrics = report["cases"][0]["metrics"]
    assert set(metrics) == set(METRICS)
    for metric in METRICS:
        assert metrics[metric]["statistic"] <= metrics[metric]["threshold"]
