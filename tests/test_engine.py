"""Tests for the parallel experiment engine and the disk baseline cache."""

import os

import pytest

from repro.harness.engine import (
    SimJob,
    derive_seed,
    ensure_baselines,
    parallel_map,
    run_job,
    run_jobs,
)
from repro.harness.runner import (
    BaselineCache,
    baseline_cache,
    clear_baseline_cache,
    single_thread_ipc,
)
from repro.pipeline.config import SMTConfig

CYCLES = 1_200
WARMUP = 300


def small_jobs():
    return [
        SimJob(("gzip",), "ICOUNT", None, CYCLES, WARMUP, seed=3),
        SimJob(("mcf", "gzip"), "DCRA", None, CYCLES, WARMUP, seed=3),
        SimJob(("twolf",), ("DCRA", {"activity_window": 64}), None,
               CYCLES, WARMUP, seed=5),
        SimJob(("gzip", "twolf"), "FLUSH++", None, CYCLES, WARMUP, seed=7),
    ]


class TestSimJob:
    def test_benchmarks_coerced_to_tuple(self):
        job = SimJob(["gzip", "twolf"])
        assert job.benchmarks == ("gzip", "twolf")

    def test_run_job_matches_direct_run(self):
        from repro.harness.runner import run_benchmarks

        job = small_jobs()[0]
        direct = run_benchmarks(["gzip"], "ICOUNT", None, CYCLES, WARMUP, 3)
        assert run_job(job) == direct

    def test_derive_seed_is_deterministic_and_disjoint(self):
        seeds = [derive_seed(1, i) for i in range(50)]
        assert seeds == [derive_seed(1, i) for i in range(50)]
        assert len(set(seeds)) == 50


class TestRunJobs:
    def test_serial_results_in_submission_order(self):
        jobs = small_jobs()
        results = run_jobs(jobs, max_workers=1)
        assert [r.policy for r in results] == ["ICOUNT", "DCRA", "DCRA",
                                               "FLUSH++"]

    def test_parallel_identical_to_serial(self):
        """The acceptance contract: any worker count, bitwise-equal rows."""
        jobs = small_jobs()
        serial = run_jobs(jobs, max_workers=1)
        parallel = run_jobs(jobs, max_workers=2)
        assert parallel == serial  # dataclass equality covers every field

    def test_parallel_map_preserves_order(self):
        items = list(range(20))
        assert parallel_map(_square, items, max_workers=4) \
            == [i * i for i in items]


def _square(x):
    return x * x


class TestBaselineCache:
    def test_miss_then_disk_hit_across_instances(self):
        clear_baseline_cache()
        config = SMTConfig()
        ipc = single_thread_ipc("gzip", config, CYCLES, WARMUP, seed=11)
        # A brand-new cache object (fresh memory) must hit via disk.
        fresh = BaselineCache()
        assert fresh.get("gzip", config, CYCLES, WARMUP, 11) == ipc

    def test_entry_written_to_cache_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_baseline_cache()
        single_thread_ipc("gzip", None, CYCLES, WARMUP, seed=12)
        files = list((tmp_path / "baselines").glob("*.json"))
        assert len(files) == 1

    def test_key_includes_config_cycles_warmup_seed(self, tmp_path,
                                                    monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_baseline_cache()
        single_thread_ipc("gzip", None, CYCLES, WARMUP, seed=12)
        single_thread_ipc("gzip", SMTConfig(int_iq_size=8), CYCLES, WARMUP,
                          seed=12)
        single_thread_ipc("gzip", None, CYCLES + 100, WARMUP, seed=12)
        single_thread_ipc("gzip", None, CYCLES, WARMUP + 100, seed=12)
        single_thread_ipc("gzip", None, CYCLES, WARMUP, seed=13)
        files = list((tmp_path / "baselines").glob("*.json"))
        assert len(files) == 5  # five distinct descriptors, five entries

    def test_version_bump_invalidates(self, tmp_path, monkeypatch):
        from repro.harness import runner

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_baseline_cache()
        single_thread_ipc("gzip", None, CYCLES, WARMUP, seed=12)
        monkeypatch.setattr(runner, "BASELINE_CACHE_VERSION",
                            runner.BASELINE_CACHE_VERSION + 1)
        fresh = BaselineCache()
        assert fresh.get("gzip", SMTConfig(), CYCLES, WARMUP, 12) is None

    def test_source_change_invalidates(self, tmp_path, monkeypatch):
        """Entries written by a different simulator source never hit."""
        from repro.harness import results

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_baseline_cache()
        single_thread_ipc("gzip", None, CYCLES, WARMUP, seed=12)
        monkeypatch.setattr(results, "_fingerprint_cache", "0000other0000000")
        fresh = BaselineCache()
        assert fresh.get("gzip", SMTConfig(), CYCLES, WARMUP, 12) is None

    def test_disk_hit_skips_simulation(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_baseline_cache()
        expected = single_thread_ipc("gzip", None, CYCLES, WARMUP, seed=12)
        clear_baseline_cache()  # drop memory, keep disk

        from repro.harness import runner

        def boom(*args, **kwargs):
            raise AssertionError("simulated despite a disk cache hit")

        monkeypatch.setattr(runner, "run_benchmarks", boom)
        assert single_thread_ipc("gzip", None, CYCLES, WARMUP,
                                 seed=12) == expected

    def test_clear_disk_removes_entries(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_baseline_cache()
        single_thread_ipc("gzip", None, CYCLES, WARMUP, seed=12)
        clear_baseline_cache(disk=True)
        assert not (tmp_path / "baselines").exists()

    def test_corrupt_entry_degrades_to_miss(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_baseline_cache()
        single_thread_ipc("gzip", None, CYCLES, WARMUP, seed=12)
        (entry,) = (tmp_path / "baselines").glob("*.json")
        entry.write_text("{not json")
        fresh = BaselineCache()
        assert fresh.get("gzip", SMTConfig(), CYCLES, WARMUP, 12) is None


class TestCrossProcessCache:
    def test_workers_populate_shared_disk_cache(self, tmp_path, monkeypatch):
        """Baselines computed in pool workers must hit in the parent."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_baseline_cache()
        singles = ensure_baselines(["gzip", "twolf"], None, CYCLES, WARMUP,
                                   seed=21, max_workers=2)
        assert set(singles) == {"gzip", "twolf"}
        # The worker runs (or the write-back) left disk entries behind ...
        files = list((tmp_path / "baselines").glob("*.json"))
        assert len(files) == 2
        # ... that a fresh process-side cache resolves without simulating.
        from repro.harness import runner

        clear_baseline_cache()

        def boom(*args, **kwargs):
            raise AssertionError("simulated despite warm disk cache")

        monkeypatch.setattr(runner, "run_benchmarks", boom)
        again = ensure_baselines(["gzip", "twolf"], None, CYCLES, WARMUP,
                                 seed=21, max_workers=1)
        assert again == singles


class TestDriversParallelEqualSerial:
    def test_compare_policies(self):
        from repro.harness import experiments as exp

        kwargs = dict(cells=((2, "MIX"),), cycles=CYCLES, warmup=WARMUP)
        clear_baseline_cache()
        serial = exp.compare_policies(["ICOUNT", "DCRA"], jobs=1, **kwargs)
        clear_baseline_cache()
        parallel = exp.compare_policies(["ICOUNT", "DCRA"], jobs=2, **kwargs)
        assert parallel == serial

    def test_table5(self):
        from repro.harness import experiments as exp

        serial = exp.table5_phase_distribution(cycles=CYCLES, warmup=WARMUP,
                                               jobs=1)
        parallel = exp.table5_phase_distribution(cycles=CYCLES, warmup=WARMUP,
                                                 jobs=2)
        assert parallel == serial

    def test_figure2(self):
        from repro.harness import experiments as exp

        kwargs = dict(cycles=CYCLES, warmup=WARMUP, fractions=(0.5, 1.0),
                      resources=("int_iq",))
        assert exp.figure2_resource_sensitivity(jobs=2, **kwargs) \
            == exp.figure2_resource_sensitivity(jobs=1, **kwargs)
