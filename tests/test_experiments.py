"""Smoke tests for the experiment drivers (tiny budgets).

These check that every driver runs end to end, returns well-formed rows
and formats cleanly; the quantitative shape checks live in benchmarks/.
"""

import pytest

from repro.harness import experiments as exp

CYCLES = 2_000
WARMUP = 400
CELLS = ((2, "MIX"),)


class TestFigure2:
    def test_rows_and_formatting(self):
        rows = exp.figure2_resource_sensitivity(
            cycles=CYCLES, warmup=WARMUP, fractions=(0.25, 1.0),
            resources=("int_iq", "fp_regs"))
        assert {r.resource for r in rows} == {"int_iq", "fp_regs"}
        for row in rows:
            assert row.relative_ipc >= 0
        table = exp.format_figure2(rows)
        assert "int_iq" in table

    def test_full_fraction_is_unity(self):
        rows = exp.figure2_resource_sensitivity(
            cycles=CYCLES, warmup=WARMUP, fractions=(1.0,),
            resources=("ls_iq",))
        assert rows[0].relative_ipc == pytest.approx(1.0)

    def test_unknown_resource_rejected(self):
        with pytest.raises(ValueError):
            exp._fig2_config_for("l3_cache", 0.5)

    def test_config_scaling(self):
        config = exp._fig2_config_for("int_iq", 0.5)
        assert config.int_iq_size == 16
        config = exp._fig2_config_for("int_regs", 0.5)
        assert config.int_physical_registers == 32 + 80


class TestTable3:
    def test_rows(self):
        rows = exp.table3_miss_rates(cycles=CYCLES, warmup=WARMUP,
                                     benchmarks=("gzip", "mcf"))
        by_name = {r.benchmark: r for r in rows}
        assert by_name["mcf"].paper_l2_missrate_pct == 29.6
        assert by_name["mcf"].measured_l2_missrate_pct > \
            by_name["gzip"].measured_l2_missrate_pct
        assert "mcf" in exp.format_table3(rows)

    def test_measured_class_rule(self):
        row = exp.Table3Row("x", "int", "MEM", 5.0, 0.4)
        assert row.measured_class == "ILP"
        row = exp.Table3Row("x", "int", "MEM", 5.0, 4.0)
        assert row.measured_class == "MEM"


class TestTable5:
    def test_rows_sum_to_hundred(self):
        rows = exp.table5_phase_distribution(cycles=CYCLES, warmup=WARMUP,
                                             interval_cycles=500)
        assert [r.wtype for r in rows] == ["ILP", "MIX", "MEM"]
        for row in rows:
            total = row.slow_slow_pct + row.mixed_pct + row.fast_fast_pct
            assert total == pytest.approx(100.0)
        assert "SLOW-SLOW" in exp.format_table5(rows)

    def test_rows_come_from_recorded_timelines(self):
        """The driver consumes PhaseTimeline — same numbers, same source."""
        timelines = exp.table5_timelines(cycles=CYCLES, warmup=WARMUP,
                                         interval_cycles=500)
        rows = exp.table5_phase_distribution(cycles=CYCLES, warmup=WARMUP,
                                             interval_cycles=500)
        assert [wtype for wtype, _ in timelines] == [r.wtype for r in rows]
        for (_, timeline), row in zip(timelines, rows):
            # Each cell merges the four groups' timelines: 4 workloads
            # x CYCLES/500 intervals of phase history.
            assert timeline.cycles == 4 * CYCLES
            assert timeline.two_thread_split() == pytest.approx(
                (row.slow_slow_pct, row.mixed_pct, row.fast_fast_pct))

    def test_interval_resolution_does_not_change_totals(self):
        coarse = exp.table5_phase_distribution(cycles=CYCLES, warmup=WARMUP,
                                               interval_cycles=CYCLES)
        fine = exp.table5_phase_distribution(cycles=CYCLES, warmup=WARMUP,
                                             interval_cycles=250)
        for a, b in zip(coarse, fine):
            assert a.slow_slow_pct == pytest.approx(b.slow_slow_pct)
            assert a.mixed_pct == pytest.approx(b.mixed_pct)


class TestPolicyComparison:
    def test_interval_mode_is_bitwise_identical_with_progress(self):
        plain = exp.compare_policies(["ICOUNT", "DCRA"], cells=CELLS,
                                     cycles=CYCLES, warmup=WARMUP)
        events = []
        chunked = exp.compare_policies(
            ["ICOUNT", "DCRA"], cells=CELLS, cycles=CYCLES, warmup=WARMUP,
            interval_cycles=500,
            progress=lambda index, event: events.append((index, event)))
        assert chunked == plain
        # 4 workloads x 2 policies x (CYCLES/500) intervals
        assert len(events) == 8 * (CYCLES // 500)
        assert all("MIX2" in event.tag for _, event in events)

    def test_compare_policies_shape(self):
        results = exp.compare_policies(["ICOUNT", "SRA"], cells=CELLS,
                                       cycles=CYCLES, warmup=WARMUP)
        assert len(results) == 2
        assert {r.policy for r in results} == {"ICOUNT", "SRA"}
        assert "ICOUNT" in exp.format_cell_results(results)

    def test_improvements_over(self):
        results = exp.compare_policies(["ICOUNT", "DCRA"], cells=CELLS,
                                       cycles=CYCLES, warmup=WARMUP)
        rows = exp.improvements_over(results)
        assert len(rows) == 1
        assert rows[0].baseline == "ICOUNT"
        assert "ICOUNT" in exp.format_improvements(rows)

    def test_improvements_require_subject(self):
        results = exp.compare_policies(["ICOUNT", "SRA"], cells=CELLS,
                                       cycles=CYCLES, warmup=WARMUP)
        with pytest.raises(ValueError):
            exp.improvements_over(results, subject="DCRA")

    def test_figure4_driver(self):
        rows = exp.figure4_dcra_vs_static(cells=CELLS, cycles=CYCLES,
                                          warmup=WARMUP)
        assert all(r.baseline == "SRA" for r in rows)


class TestSweeps:
    def test_figure6_rows(self):
        rows = exp.figure6_register_sweep(
            register_sizes=(352,), cells=CELLS,
            cycles=CYCLES, warmup=WARMUP)
        baselines = {r.baseline for r in rows}
        assert baselines == {"ICOUNT", "FLUSH++", "DG", "SRA"}
        assert "registers" in exp.format_sweep(rows, "registers")

    def test_figure7_rows_and_factor_selection(self):
        rows = exp.figure7_latency_sweep(
            latencies=((100, 10),), cells=CELLS,
            cycles=CYCLES, warmup=WARMUP)
        assert {r.parameter for r in rows} == {100}

    def test_dcra_for_latency_factors(self):
        from repro.core.sharing import resolve_factor

        name, kwargs = exp.dcra_for_latency(100)
        assert name == "DCRA"
        config = kwargs["config"]
        # Factor *names*, not callables: names key the result store
        # stably across processes and serialise to scenario files.
        assert config.iq_sharing_factor == "inverse_active"
        assert resolve_factor(config.iq_sharing_factor)(1, 1) == \
            pytest.approx(0.5)
        name, kwargs = exp.dcra_for_latency(500)
        assert kwargs["config"].iq_sharing_factor == "zero"
        assert resolve_factor(
            kwargs["config"].iq_sharing_factor)(1, 1) == 0.0


class TestText52:
    def test_rows(self):
        rows = exp.text52_frontend_and_mlp(cells=CELLS, cycles=CYCLES,
                                           warmup=WARMUP)
        assert {r.policy for r in rows} == {"FLUSH++", "DCRA"}
        for row in rows:
            assert row.fetched_per_commit > 0
        assert "fetch/commit" in exp.format_text52(rows)
