"""Tests for the plain-text reporting helpers."""

import pytest

from repro.metrics.report import comparison_table, paper_scorecard, thread_table
from repro.metrics.stats import SimulationResult, ThreadResult


def make_result(policy="DCRA", ipcs=(2.0, 0.5), warmup_cycles=None):
    threads = [
        ThreadResult(f"bench{i}", committed=int(ipc * 1000), ipc=ipc,
                     fetched=1500, fetched_wrong_path=100, squashed=120,
                     mispredict_rate=0.05, l1d_missrate=0.03,
                     l2_missrate_pct=1.0, slow_cycle_frac=0.4)
        for i, ipc in enumerate(ipcs)
    ]
    return SimulationResult(policy, cycles=1000, threads=threads,
                            avg_l2_overlap=2.0,
                            warmup_cycles=warmup_cycles)


class TestThreadTable:
    def test_contains_all_threads(self):
        table = thread_table(make_result())
        assert "bench0" in table
        assert "bench1" in table
        assert "DCRA" in table

    def test_contains_metrics(self):
        table = thread_table(make_result())
        assert "2.00" in table  # IPC
        assert "throughput 2.50" in table

    def test_warmup_omitted_when_unrecorded(self):
        assert "warm-up" not in thread_table(make_result())

    def test_warmup_printed_when_recorded(self):
        table = thread_table(make_result(warmup_cycles=2500))
        assert "warm-up 2500" in table.splitlines()[0]


class TestComparisonTable:
    def test_side_by_side(self):
        table = comparison_table([make_result("ICOUNT"), make_result("DCRA")])
        assert "ICOUNT" in table and "DCRA" in table

    def test_with_hmean(self):
        table = comparison_table([make_result()], single_ipcs=[2.0, 1.0])
        assert "Hmean" in table

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            comparison_table([])

    def test_zero_baseline_degrades_to_zero_hmean(self):
        with pytest.warns(RuntimeWarning):
            table = comparison_table([make_result()], single_ipcs=[0.0, 1.0])
        assert "0.000" in table

    def test_rejects_mismatched_workloads(self):
        a = make_result(ipcs=(1.0,))
        b = make_result(ipcs=(1.0, 2.0))
        with pytest.raises(ValueError):
            comparison_table([a, b])

    def test_warmup_line_omitted_for_legacy_results(self):
        table = comparison_table([make_result("ICOUNT"), make_result("DCRA")])
        assert "warm-up" not in table

    def test_uniform_warmups_collapse_to_one_line(self):
        table = comparison_table([
            make_result("ICOUNT", warmup_cycles=3000),
            make_result("DCRA", warmup_cycles=3000),
        ])
        assert table.splitlines()[-1] == "warm-up: 3000 cycles"

    def test_per_policy_warmups_listed_when_they_differ(self):
        table = comparison_table([
            make_result("ICOUNT", warmup_cycles=2000),
            make_result("DCRA", warmup_cycles=5000),
        ])
        assert table.splitlines()[-1] == "warm-up: ICOUNT=2000 DCRA=5000"

    def test_mixed_recording_omits_warmup_line(self):
        table = comparison_table([
            make_result("ICOUNT", warmup_cycles=2000),
            make_result("DCRA"),
        ])
        assert "warm-up" not in table


class TestScorecard:
    def test_rendering(self):
        card = paper_scorecard({
            "DCRA vs SRA Hmean": {"paper": 8.0, "measured": 7.8},
        })
        assert "DCRA vs SRA Hmean" in card
        assert "8.0" in card and "7.8" in card
