"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one artefact of the paper (a table or a
figure) and prints it, while pytest-benchmark records the wall-clock
cost of the regeneration.  Budgets are environment-tunable:

* ``REPRO_BENCH_CYCLES`` — measured cycles per simulation (default 6000;
  the committed EXPERIMENTS.md numbers used 30000).
* ``REPRO_BENCH_FULL``  — set to 1 to sweep all nine workload cells
  instead of the quick representative subset.
"""

import pytest

from _budget import BENCH_CELLS, BENCH_CYCLES, BENCH_WARMUP


@pytest.fixture
def bench_budget():
    """(cycles, warmup, cells) tuple for experiment benchmarks."""
    return BENCH_CYCLES, BENCH_WARMUP, BENCH_CELLS
