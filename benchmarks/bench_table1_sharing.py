"""Table 1 — the pre-computed sharing-model allocation table.

Regenerates the paper's Table 1 exactly and benchmarks the sharing-model
computation itself (the paper argues it is cheap enough for a
combinational circuit or a 10-entry ROM; here we measure the software
cost of recomputing every cap each cycle).
"""

from repro.core.sharing import precomputed_table, slow_share

PAPER_TABLE_1 = [
    (0, 1, 32), (1, 1, 24), (0, 2, 16), (2, 1, 18), (1, 2, 14),
    (0, 3, 11), (3, 1, 14), (2, 2, 12), (1, 3, 10), (0, 4, 8),
]


def test_table1_regeneration(benchmark):
    table = benchmark(precomputed_table, 32, 4, "inverse_active")
    assert table == PAPER_TABLE_1
    print("\nTable 1 (R=32, 4 threads, C=1/(FA+SA)):")
    print(f"{'entry':>5} {'FA':>3} {'SA':>3} {'Eslow':>6}")
    for index, (fa, sa, share) in enumerate(table, 1):
        print(f"{index:5d} {fa:3d} {sa:3d} {share:6d}")


def test_per_cycle_cap_computation(benchmark):
    """Cost of the per-cycle cap recomputation DCRA performs (5 resources)."""

    def compute_all_caps():
        caps = []
        for total in (80, 80, 80, 224, 224):
            caps.append(slow_share(total, 2, 2, "inverse_active_plus4"))
        return caps

    caps = benchmark(compute_all_caps)
    assert len(caps) == 5
