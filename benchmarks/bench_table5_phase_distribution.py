"""Table 5 — fast/slow phase combinations of 2-thread workloads.

Paper claim: MIX workloads spend most cycles (63%) with the two threads
in *different* phases — the situation where DCRA's dynamic borrowing
pays — while MEM pairs are mostly both-slow and ILP pairs mostly have a
fast thread.
"""

from _budget import BENCH_CYCLES, BENCH_WARMUP

from repro.harness.experiments import (
    format_table5,
    table5_phase_distribution,
)


def test_table5_regeneration(benchmark):
    rows = benchmark.pedantic(
        table5_phase_distribution,
        kwargs=dict(cycles=BENCH_CYCLES, warmup=BENCH_WARMUP),
        rounds=1, iterations=1,
    )
    print("\nTable 5 (% of cycles, 2-thread workloads):")
    print(format_table5(rows))

    by_type = {row.wtype: row for row in rows}
    # MEM pairs: dominated by both-slow (paper: 85%).
    assert by_type["MEM"].slow_slow_pct > 50
    # ILP pairs see the most both-fast time of the three types
    # (paper: 50.8%).
    assert by_type["ILP"].fast_fast_pct > by_type["MIX"].fast_fast_pct
    assert by_type["ILP"].fast_fast_pct > by_type["MEM"].fast_fast_pct
    # MIX pairs: different-phase time is the largest share (paper: 63%).
    mix = by_type["MIX"]
    assert mix.mixed_pct > mix.fast_fast_pct
    assert mix.mixed_pct > 35
