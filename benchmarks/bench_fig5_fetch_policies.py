"""Figure 5 — DCRA vs the resource-conscious fetch policies.

Paper claims: DCRA beats ICOUNT (+24% IPC / +18% Hmean) and DG (+30% /
+41%) clearly, and edges FLUSH++ (+1% / +4%) overall while FLUSH++ keeps
an advantage on pure-MEM workloads.  The benchmark regenerates both
panels over the configured cells and asserts the ordering.
"""

from _budget import BENCH_CYCLES, BENCH_WARMUP

from repro.harness.experiments import (
    figure5_policy_comparison,
    format_cell_results,
    format_improvements,
    improvements_over,
)


def test_figure5_regeneration(benchmark, bench_budget):
    cycles, warmup, cells = bench_budget
    results = benchmark.pedantic(
        figure5_policy_comparison,
        kwargs=dict(cells=cells, cycles=cycles, warmup=warmup),
        rounds=1, iterations=1,
    )
    print("\nFigure 5a (throughput / Hmean per policy):")
    print(format_cell_results(results))
    rows = improvements_over(results)
    print("\nFigure 5b (DCRA Hmean improvement):")
    print(format_improvements(rows))

    def mean_improvement(baseline):
        values = [r.hmean_improvement_pct for r in rows
                  if r.baseline == baseline]
        return sum(values) / len(values)

    icount = mean_improvement("ICOUNT")
    dg = mean_improvement("DG")
    flushpp = mean_improvement("FLUSH++")
    print(f"\nmean Hmean improvement: ICOUNT {icount:+.1f}% "
          f"(paper +18%), DG {dg:+.1f}% (paper +41%), "
          f"FLUSH++ {flushpp:+.1f}% (paper +4%)")
    # Shape: DCRA ahead of every fetch policy on average; DG worst.
    assert icount > 0
    assert dg > 0
    assert flushpp > 0
    assert dg >= min(icount, flushpp) - 5.0
