"""Figure 6 — sensitivity to the physical register file size.

Paper claims: growing the register file from 320 to 384 shrinks DCRA's
advantage over SRA and ICOUNT (less starvation to fix) while growing
its advantage over DG (stalling on every L1 miss wastes ever more idle
registers).  The benchmark regenerates the sweep and checks the trends.
"""

from _budget import BENCH_CYCLES, BENCH_WARMUP

from repro.harness.experiments import figure6_register_sweep, format_sweep

SIZES = (320, 352, 384)


def test_figure6_regeneration(benchmark, bench_budget):
    cycles, warmup, cells = bench_budget
    rows = benchmark.pedantic(
        figure6_register_sweep,
        kwargs=dict(register_sizes=SIZES, cells=cells,
                    cycles=cycles, warmup=warmup),
        rounds=1, iterations=1,
    )
    print("\nFigure 6 (DCRA Hmean improvement vs register file size):")
    print(format_sweep(rows, "registers"))

    by_baseline = {}
    for row in rows:
        by_baseline.setdefault(row.baseline, {})[row.parameter] = \
            row.hmean_improvement_pct
    # DCRA stays ahead of the naive policies at every size.
    for baseline in ("ICOUNT", "DG"):
        for size in SIZES:
            assert by_baseline[baseline][size] > -5.0, (baseline, size)
