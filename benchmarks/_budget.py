"""Benchmark budgets, environment-tunable (see conftest for docs)."""

import os

#: Measured cycles per simulation in benchmark runs.
BENCH_CYCLES = int(os.environ.get("REPRO_BENCH_CYCLES", "6000"))

#: Warm-up cycles per simulation in benchmark runs.
BENCH_WARMUP = max(500, BENCH_CYCLES // 4)

#: Quick representative cells; full nine-cell sweep via REPRO_BENCH_FULL.
if os.environ.get("REPRO_BENCH_FULL"):
    BENCH_CELLS = tuple(
        (threads, wtype)
        for threads in (2, 3, 4)
        for wtype in ("ILP", "MIX", "MEM")
    )
else:
    BENCH_CELLS = ((2, "ILP"), (2, "MEM"))
