"""Table 3 — per-benchmark L2 miss rates and MEM/ILP classification.

Checks the synthetic profiles land on the published cache behaviour:
the MEM set must stay above the 1% line and keep the published ordering
(mcf worst, then art, swim, ...), the ILP set must stay near zero.
"""

from _budget import BENCH_CYCLES, BENCH_WARMUP

from repro.harness.experiments import format_table3, table3_miss_rates

#: A representative subset by default: worst MEM offenders + typical ILP.
BENCHMARKS = ("mcf", "art", "swim", "twolf", "gzip", "eon", "gcc", "wupwise")


def test_table3_regeneration(benchmark):
    rows = benchmark.pedantic(
        table3_miss_rates,
        kwargs=dict(cycles=max(4000, BENCH_CYCLES),
                    warmup=BENCH_WARMUP, benchmarks=BENCHMARKS),
        rounds=1, iterations=1,
    )
    print("\nTable 3 (L2 miss rate, % of L1D accesses):")
    print(format_table3(rows))

    measured = {row.benchmark: row.measured_l2_missrate_pct for row in rows}
    # MEM/ILP split at the paper's 1% line.
    for name in ("mcf", "art", "swim", "twolf"):
        assert measured[name] > 1.0, name
    for name in ("gzip", "eon", "wupwise", "gcc"):
        assert measured[name] < 1.5, name
    # Published ordering of the worst offenders.
    assert measured["mcf"] > measured["art"] > measured["twolf"]
