"""Figure 4 — DCRA vs static resource allocation (SRA).

Paper claim: DCRA outperforms an equal static split by ~7% throughput
and ~8% Hmean on average.  The benchmark regenerates the per-cell
improvements and checks DCRA wins on average over the evaluated cells.
"""

from _budget import BENCH_CELLS, BENCH_CYCLES, BENCH_WARMUP

from repro.harness.experiments import (
    figure4_dcra_vs_static,
    format_improvements,
)


def test_figure4_regeneration(benchmark, bench_budget):
    cycles, warmup, cells = bench_budget
    rows = benchmark.pedantic(
        figure4_dcra_vs_static,
        kwargs=dict(cells=cells, cycles=cycles, warmup=warmup),
        rounds=1, iterations=1,
    )
    print("\nFigure 4 (DCRA improvement over SRA):")
    print(format_improvements(rows))

    mean_hmean = sum(r.hmean_improvement_pct for r in rows) / len(rows)
    print(f"mean Hmean improvement: {mean_hmean:+.1f}% (paper: +8%)")
    # Shape check: DCRA ahead of SRA on average.  Short default budgets
    # carry a few percent of sampling noise, so allow a small negative
    # margin; the committed full-budget numbers live in EXPERIMENTS.md.
    assert mean_hmean > -3.0
