"""Figure 2 — single-thread speed vs fraction of one resource.

Paper claim: with a perfect L1D, threads reach ~90% of full speed with
only 37.5% of the queues/registers — the headroom DCRA hands to slow
threads.  The benchmark regenerates the curves (a reduced fraction grid
by default) and checks their monotone-saturating shape.
"""

from _budget import BENCH_CYCLES

from repro.harness.experiments import (
    figure2_resource_sensitivity,
    format_figure2,
)

FRACTIONS = (0.125, 0.375, 1.0)


def test_figure2_curves(benchmark):
    rows = benchmark.pedantic(
        figure2_resource_sensitivity,
        kwargs=dict(cycles=max(2000, BENCH_CYCLES // 2),
                    warmup=max(500, BENCH_CYCLES // 8),
                    fractions=FRACTIONS),
        rounds=1, iterations=1,
    )
    print("\nFigure 2 (relative IPC, perfect L1D):")
    print(format_figure2(rows))

    by_resource = {}
    for row in rows:
        by_resource.setdefault(row.resource, {})[row.fraction] = \
            row.relative_ipc
    for resource, curve in by_resource.items():
        # Full-resource point is 1.0 by construction.
        assert curve[1.0] == 1.0
        # Shrinking a resource never helps much (small noise tolerated)...
        assert curve[0.125] <= curve[1.0] + 0.05, resource
        # ...and 37.5% of a resource already gives most of full speed
        # (the paper's ~90% observation).
        assert curve[0.375] >= 0.7, resource
