"""Simulator performance: simulated instructions and cycles per second.

Not a paper artefact, but the number every user of a pure-Python cycle
simulator asks first.  Measures single-thread ILP, single-thread MEM and
a 4-thread mixed configuration.

Besides the human-readable console lines, the run writes a
machine-readable ``BENCH_speed.json`` (override the path with
``$BENCH_SPEED_JSON``) mapping each configuration to its simulated
cycles/s and committed-instruction count, so the performance trajectory
can be tracked across PRs (CI uploads it as a workflow artifact).
"""

import json
import os
import platform
from pathlib import Path

import pytest

from repro.pipeline.config import SMTConfig
from repro.pipeline.processor import SMTProcessor
from repro.policies.registry import make_policy
from repro.trace.profiles import get_profile

CYCLES = 4_000

#: Per-configuration measurements accumulated by the tests and dumped to
#: ``BENCH_speed.json`` when the module's tests finish.
_MEASUREMENTS = {}


@pytest.fixture(scope="module", autouse=True)
def _dump_bench_json():
    """Write the collected measurements after the module's tests ran."""
    yield
    if not _MEASUREMENTS:
        return
    path = Path(os.environ.get("BENCH_SPEED_JSON", "BENCH_speed.json"))
    payload = {
        "cycles_per_run": CYCLES,
        "python": platform.python_version(),
        "configurations": _MEASUREMENTS,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def run_config(benchmarks, policy="ICOUNT"):
    processor = SMTProcessor(SMTConfig(),
                             [get_profile(b) for b in benchmarks],
                             make_policy(policy), seed=1)
    processor.run(CYCLES)
    return processor


@pytest.mark.parametrize("benchmarks,label", [
    (("gzip",), "1-thread ILP"),
    (("mcf",), "1-thread MEM"),
    (("gzip", "twolf", "bzip2", "mcf"), "4-thread MIX"),
])
def test_simulation_speed(benchmark, benchmarks, label):
    processor = benchmark.pedantic(run_config, args=(benchmarks,),
                                   rounds=1, iterations=1)
    committed = sum(t.stats.committed for t in processor.threads)
    cycles_per_sec = CYCLES / benchmark.stats.stats.mean
    _MEASUREMENTS[label] = {
        "benchmarks": list(benchmarks),
        "policy": "ICOUNT",
        "cycles_per_sec": round(cycles_per_sec, 1),
        "instructions_per_sec": round(committed / benchmark.stats.stats.mean,
                                      1),
        "committed": committed,
    }
    print(f"\n{label}: {CYCLES} cycles, {committed} instructions committed, "
          f"{cycles_per_sec:,.0f} simulated cycles/s")
    assert committed > 0


def test_interval_mode_overhead(benchmark):
    """Chunked runs must cost <5% over monolithic at 5000-cycle intervals.

    Measures the same 4-thread MIX configuration both ways (min of three
    timings each, interleaved to share cache/frequency state) and records
    the overhead percentage in BENCH_speed.json — the acceptance number
    for the interval refactor.
    """
    import time

    interval_cycles = 5_000
    total_cycles = 20_000
    benchmarks_mix = ("gzip", "twolf", "bzip2", "mcf")

    def build():
        return SMTProcessor(SMTConfig(),
                            [get_profile(b) for b in benchmarks_mix],
                            make_policy("ICOUNT"), seed=1)

    def measure():
        mono_times, interval_times = [], []
        for _ in range(3):
            processor = build()
            start = time.perf_counter()
            processor.run(total_cycles)
            mono_times.append(time.perf_counter() - start)
            mono = processor

            processor = build()
            start = time.perf_counter()
            snapshots = list(processor.run_intervals(
                interval_cycles, total_cycles=total_cycles))
            interval_times.append(time.perf_counter() - start)
            chunked = processor
        return mono, chunked, snapshots, min(mono_times), min(interval_times)

    mono, chunked, snapshots, mono_time, interval_time = benchmark.pedantic(
        measure, rounds=1, iterations=1)
    overhead_pct = 100.0 * (interval_time / mono_time - 1.0)
    _MEASUREMENTS["interval-mode overhead"] = {
        "benchmarks": list(benchmarks_mix),
        "policy": "ICOUNT",
        "interval_cycles": interval_cycles,
        "total_cycles": total_cycles,
        "monolithic_s": round(mono_time, 4),
        "interval_s": round(interval_time, 4),
        "overhead_pct": round(overhead_pct, 2),
    }
    print(f"\ninterval mode ({interval_cycles}-cycle chunks over "
          f"{total_cycles} cycles): {overhead_pct:+.2f}% vs monolithic")
    # Chunking must not change what was simulated...
    assert [t.stats.committed for t in mono.threads] \
        == [t.stats.committed for t in chunked.threads]
    assert len(snapshots) == total_cycles // interval_cycles
    # ...and the acceptance ceiling is 5%; allow measurement noise on
    # shared CI hardware while still catching a real regression.
    assert overhead_pct < 5.0 or interval_time - mono_time < 0.05


def test_dcra_overhead_vs_icount(benchmark):
    """DCRA's per-cycle classification must not dominate simulation time."""

    def run_both():
        icount = run_config(("gzip", "twolf"), "ICOUNT")
        dcra = run_config(("gzip", "twolf"), "DCRA")
        return icount, dcra

    icount, dcra = benchmark.pedantic(run_both, rounds=1, iterations=1)
    _MEASUREMENTS["2-thread ICOUNT+DCRA pair"] = {
        "benchmarks": ["gzip", "twolf"],
        "policy": "ICOUNT+DCRA",
        "cycles_per_sec": round(2 * CYCLES / benchmark.stats.stats.mean, 1),
        "instructions_per_sec": None,
        "committed": sum(t.stats.committed for t in dcra.threads)
        + sum(t.stats.committed for t in icount.threads),
    }
    assert sum(t.stats.committed for t in dcra.threads) > 0
    assert sum(t.stats.committed for t in icount.threads) > 0
