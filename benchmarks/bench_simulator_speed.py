"""Simulator performance: simulated instructions and cycles per second.

Not a paper artefact, but the number every user of a pure-Python cycle
simulator asks first.  Measures single-thread ILP, single-thread MEM and
a 4-thread mixed configuration.

Besides the human-readable console lines, the run writes a
machine-readable ``BENCH_speed.json`` (override the path with
``$BENCH_SPEED_JSON``) mapping each configuration to its simulated
cycles/s and committed-instruction count, so the performance trajectory
can be tracked across PRs (CI uploads it as a workflow artifact).
"""

import json
import os
import platform
from pathlib import Path

import pytest

from repro.pipeline.config import SMTConfig
from repro.pipeline.processor import SMTProcessor
from repro.policies.registry import make_policy
from repro.trace.profiles import get_profile

CYCLES = 4_000

#: Per-configuration measurements accumulated by the tests and dumped to
#: ``BENCH_speed.json`` when the module's tests finish.
_MEASUREMENTS = {}


@pytest.fixture(scope="module", autouse=True)
def _dump_bench_json():
    """Write the collected measurements after the module's tests ran."""
    yield
    if not _MEASUREMENTS:
        return
    path = Path(os.environ.get("BENCH_SPEED_JSON", "BENCH_speed.json"))
    payload = {
        "cycles_per_run": CYCLES,
        "python": platform.python_version(),
        "configurations": _MEASUREMENTS,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def run_config(benchmarks, policy="ICOUNT"):
    processor = SMTProcessor(SMTConfig(),
                             [get_profile(b) for b in benchmarks],
                             make_policy(policy), seed=1)
    processor.run(CYCLES)
    return processor


def test_python_calibration(benchmark):
    """Code-independent Python-speed reference for cross-machine gating.

    A fixed pure-Python workload (integer arithmetic + dict traffic,
    the simulator's dominant operation mix) whose ops/s depends only on
    the interpreter and the machine — never on this repo's code.  The
    perf gate (scripts/perf_gate.py) divides every throughput entry by
    the ratio of calibration speeds before comparing against the
    committed baseline, so a slower/faster CI machine doesn't read as a
    code regression/win.
    """
    import time

    OPS = 300_000

    def calibrate():
        table = {}
        total = 0
        start = time.perf_counter()
        for i in range(OPS):
            key = i & 1023
            total += table.get(key, 0) + (i ^ (i >> 3)) % 97
            table[key] = total & 0xFFFF
        return total, time.perf_counter() - start

    total, elapsed = benchmark.pedantic(calibrate, rounds=1, iterations=1)
    _MEASUREMENTS["python-calibration"] = {
        "ops": OPS,
        "ops_per_sec": round(OPS / elapsed, 1),
    }
    print(f"\npython calibration: {OPS / elapsed:,.0f} ops/s")
    assert total != 0


@pytest.mark.parametrize("benchmarks,label", [
    (("gzip",), "1-thread ILP"),
    (("mcf",), "1-thread MEM"),
    (("gzip", "twolf", "bzip2", "mcf"), "4-thread MIX"),
])
def test_simulation_speed(benchmark, benchmarks, label):
    processor = benchmark.pedantic(run_config, args=(benchmarks,),
                                   rounds=1, iterations=1)
    committed = sum(t.stats.committed for t in processor.threads)
    cycles_per_sec = CYCLES / benchmark.stats.stats.mean
    _MEASUREMENTS[label] = {
        "benchmarks": list(benchmarks),
        "policy": "ICOUNT",
        "cycles_per_sec": round(cycles_per_sec, 1),
        "instructions_per_sec": round(committed / benchmark.stats.stats.mean,
                                      1),
        "committed": committed,
    }
    print(f"\n{label}: {CYCLES} cycles, {committed} instructions committed, "
          f"{cycles_per_sec:,.0f} simulated cycles/s")
    assert committed > 0


@pytest.mark.parametrize("benchmarks,policy,label", [
    (("gzip", "twolf", "bzip2", "mcf"), "ICOUNT", "batched reps-8 MIX"),
    (("mcf", "twolf"), "STALL", "batched reps-8 MEM STALL"),
])
def test_backend_fanout_speedup(benchmark, benchmarks, policy, label):
    """The batched backend on a ``--reps 8`` fan-out vs the scalar loop.

    Times the identical 8-replica job list through both backends,
    asserts the results are bitwise-equal (the backend contract), and
    records aggregate simulated cycles/s per backend plus the speedup
    in BENCH_speed.json.  The win comes from the fast stepper's fused
    loop and quiescence fast-forward, so it scales with the workload's
    idle share: memory-bound / fetch-gated configurations gain the
    most.
    """
    pytest.importorskip("numpy")
    import pickle
    import time

    from repro.harness.engine import SimJob, replicate_job, run_jobs

    warmup = 1_000
    jobs = replicate_job(
        SimJob(tuple(benchmarks), policy, None, CYCLES, warmup, seed=1), 8)
    total_cycles = len(jobs) * (CYCLES + warmup)

    def measure():
        start = time.perf_counter()
        scalar = run_jobs(jobs, backend="scalar")
        scalar_s = time.perf_counter() - start
        start = time.perf_counter()
        batched = run_jobs(jobs, backend="batched")
        batched_s = time.perf_counter() - start
        return scalar, batched, scalar_s, batched_s

    scalar, batched, scalar_s, batched_s = benchmark.pedantic(
        measure, rounds=1, iterations=1)
    assert [pickle.dumps(r) for r in scalar] \
        == [pickle.dumps(r) for r in batched]
    speedup = scalar_s / batched_s
    _MEASUREMENTS[label] = {
        "benchmarks": list(benchmarks),
        "policy": policy,
        "reps": len(jobs),
        "warmup": warmup,
        "aggregate_simulated_cycles": total_cycles,
        "scalar_cycles_per_sec": round(total_cycles / scalar_s, 1),
        "batched_cycles_per_sec": round(total_cycles / batched_s, 1),
        "batched_speedup": round(speedup, 3),
    }
    print(f"\n{label}: scalar {total_cycles / scalar_s:,.0f} cyc/s, "
          f"batched {total_cycles / batched_s:,.0f} cyc/s "
          f"({speedup:.2f}x, bitwise-equal results)")
    # The backend must never be a significant slowdown; the recorded
    # speedup itself is gated against the committed baseline by
    # scripts/perf_gate.py rather than a fixed threshold here.
    assert speedup > 0.8


@pytest.mark.parametrize("benchmarks,policy,memory_latency,cycles,label", [
    (("mcf",), "STALL", 1_000, 50_000, "vectorized reps-8 MEM lat1000"),
    (("mcf", "twolf"), "STALL", None, CYCLES, "vectorized reps-8 MEM STALL"),
    (("gzip", "twolf", "bzip2", "mcf"), "ICOUNT", None, CYCLES,
     "vectorized reps-8 MIX"),
])
def test_vectorized_fanout_speedup(benchmark, benchmarks, policy,
                                   memory_latency, cycles, label):
    """The vectorized backend on a ``--reps 8`` fan-out vs the scalar loop.

    Unlike the batched comparison above, results here are only
    *statistically* equivalent (the vectorized stepper draws its trace
    randomness from numpy streams — see repro/harness/equivalence.py
    for the acceptance gate), so no bitwise assert: this test records
    throughput and the ``vectorized_speedup`` ratio, which
    scripts/perf_gate.py gates against the committed baseline.  The
    headline entry is the backend's design point — a DRAM-bound
    single-thread shape at high memory latency, where the lane-parallel
    stepper's quiescence skip and shared warm-up images pay off most.
    """
    pytest.importorskip("numpy")
    import time

    from repro.harness.engine import SimJob, replicate_job, run_jobs

    warmup = 1_000
    config = (SMTConfig(memory_latency=memory_latency)
              if memory_latency else None)
    jobs = replicate_job(
        SimJob(tuple(benchmarks), policy, config, cycles, warmup, seed=1), 8)
    total_cycles = len(jobs) * (cycles + warmup)

    def measure():
        start = time.perf_counter()
        scalar = run_jobs(jobs, backend="scalar")
        scalar_s = time.perf_counter() - start
        start = time.perf_counter()
        vectorized = run_jobs(jobs, backend="vectorized")
        vectorized_s = time.perf_counter() - start
        return scalar, vectorized, scalar_s, vectorized_s

    scalar, vectorized, scalar_s, vectorized_s = benchmark.pedantic(
        measure, rounds=1, iterations=1)
    assert all(r.threads and r.cycles == cycles for r in vectorized)
    speedup = scalar_s / vectorized_s
    _MEASUREMENTS[label] = {
        "benchmarks": list(benchmarks),
        "policy": policy,
        "memory_latency": memory_latency,
        "reps": len(jobs),
        "cycles": cycles,
        "warmup": warmup,
        "aggregate_simulated_cycles": total_cycles,
        "scalar_cycles_per_sec": round(total_cycles / scalar_s, 1),
        "vectorized_cycles_per_sec": round(total_cycles / vectorized_s, 1),
        "vectorized_speedup": round(speedup, 3),
    }
    print(f"\n{label}: scalar {total_cycles / scalar_s:,.0f} cyc/s, "
          f"vectorized {total_cycles / vectorized_s:,.0f} cyc/s "
          f"({speedup:.2f}x, statistically equivalent results)")
    # Never a significant slowdown; the recorded speedup itself is
    # gated against the committed baseline by scripts/perf_gate.py.
    assert speedup > 0.8


def test_vectorized_width_scaling(benchmark):
    """Vectorized throughput as the lane count grows: B = 1 .. 32.

    All lanes share the headline DRAM-bound shape; the curve exposes
    how the per-batch fixed costs (stream setup, shared prewarm image
    capture, lane warm-up) amortise as the fan-out widens.  Recorded
    as cycles/s per width in BENCH_speed.json.
    """
    pytest.importorskip("numpy")
    import time

    from repro.batch.vectorized import VectorizedSimulator
    from repro.harness.engine import SimJob, replicate_job

    cycles, warmup = 8_000, 500
    widths = (1, 2, 4, 8, 16, 32)
    base = SimJob(("mcf",), "STALL", SMTConfig(memory_latency=1_000),
                  cycles, warmup, seed=1)

    def measure():
        curve = {}
        for width in widths:
            jobs = replicate_job(base, width)
            start = time.perf_counter()
            results = VectorizedSimulator(jobs).run()
            elapsed = time.perf_counter() - start
            total = width * (cycles + warmup)
            curve[width] = (total / elapsed, len(results))
        return curve

    curve = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert all(count == width for width, (_, count) in curve.items())
    _MEASUREMENTS["vectorized width scaling"] = {
        "benchmarks": ["mcf"],
        "policy": "STALL",
        "memory_latency": 1_000,
        "cycles": cycles,
        "warmup": warmup,
        "cycles_per_sec_by_width": {
            str(width): round(rate, 1)
            for width, (rate, _) in curve.items()},
    }
    print("\nvectorized width scaling (cycles/s): " + ", ".join(
        f"B={width}: {rate:,.0f}" for width, (rate, _) in curve.items()))


def test_batch_width_scaling(benchmark):
    """Batched throughput as the lane count grows: B = 1, 2, 4, 8, 16.

    All lanes share one shape (the 2-thread MEM STALL configuration,
    where the fast stepper wins most), so per-lane overhead — group
    detection, instrumentation refresh, demux — is what the curve
    exposes.  Recorded as cycles/s per width in BENCH_speed.json.
    """
    pytest.importorskip("numpy")
    import time

    from repro.batch import BatchedSimulator
    from repro.harness.engine import SimJob, replicate_job

    warmup = 500
    widths = (1, 2, 4, 8, 16)
    base = SimJob(("mcf", "twolf"), "STALL", None, CYCLES, warmup, seed=1)

    def measure():
        curve = {}
        for width in widths:
            jobs = replicate_job(base, width)
            start = time.perf_counter()
            results = BatchedSimulator(jobs).run()
            elapsed = time.perf_counter() - start
            total = width * (CYCLES + warmup)
            curve[width] = (total / elapsed, len(results))
        return curve

    curve = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert all(count == width for width, (_, count) in curve.items())
    _MEASUREMENTS["batched width scaling"] = {
        "benchmarks": ["mcf", "twolf"],
        "policy": "STALL",
        "warmup": warmup,
        "cycles_per_sec_by_width": {
            str(width): round(rate, 1)
            for width, (rate, _) in curve.items()},
    }
    print("\nbatched width scaling (cycles/s): " + ", ".join(
        f"B={width}: {rate:,.0f}" for width, (rate, _) in curve.items()))


def test_interval_mode_overhead(benchmark):
    """Chunked runs must cost <5% over monolithic at 5000-cycle intervals.

    Measures the same 4-thread MIX configuration both ways (min of three
    timings each, interleaved to share cache/frequency state) and records
    the overhead percentage in BENCH_speed.json — the acceptance number
    for the interval refactor.
    """
    import time

    interval_cycles = 5_000
    total_cycles = 20_000
    benchmarks_mix = ("gzip", "twolf", "bzip2", "mcf")

    def build():
        return SMTProcessor(SMTConfig(),
                            [get_profile(b) for b in benchmarks_mix],
                            make_policy("ICOUNT"), seed=1)

    def measure():
        mono_times, interval_times = [], []
        for _ in range(3):
            processor = build()
            start = time.perf_counter()
            processor.run(total_cycles)
            mono_times.append(time.perf_counter() - start)
            mono = processor

            processor = build()
            start = time.perf_counter()
            snapshots = list(processor.run_intervals(
                interval_cycles, total_cycles=total_cycles))
            interval_times.append(time.perf_counter() - start)
            chunked = processor
        return mono, chunked, snapshots, min(mono_times), min(interval_times)

    mono, chunked, snapshots, mono_time, interval_time = benchmark.pedantic(
        measure, rounds=1, iterations=1)
    overhead_pct = 100.0 * (interval_time / mono_time - 1.0)
    _MEASUREMENTS["interval-mode overhead"] = {
        "benchmarks": list(benchmarks_mix),
        "policy": "ICOUNT",
        "interval_cycles": interval_cycles,
        "total_cycles": total_cycles,
        "monolithic_s": round(mono_time, 4),
        "interval_s": round(interval_time, 4),
        "overhead_pct": round(overhead_pct, 2),
    }
    print(f"\ninterval mode ({interval_cycles}-cycle chunks over "
          f"{total_cycles} cycles): {overhead_pct:+.2f}% vs monolithic")
    # Chunking must not change what was simulated...
    assert [t.stats.committed for t in mono.threads] \
        == [t.stats.committed for t in chunked.threads]
    assert len(snapshots) == total_cycles // interval_cycles
    # ...and the acceptance ceiling is 5%; allow measurement noise on
    # shared CI hardware while still catching a real regression.
    assert overhead_pct < 5.0 or interval_time - mono_time < 0.05


def test_dcra_overhead_vs_icount(benchmark):
    """DCRA's per-cycle classification must not dominate simulation time."""

    def run_both():
        icount = run_config(("gzip", "twolf"), "ICOUNT")
        dcra = run_config(("gzip", "twolf"), "DCRA")
        return icount, dcra

    icount, dcra = benchmark.pedantic(run_both, rounds=1, iterations=1)
    _MEASUREMENTS["2-thread ICOUNT+DCRA pair"] = {
        "benchmarks": ["gzip", "twolf"],
        "policy": "ICOUNT+DCRA",
        "cycles_per_sec": round(2 * CYCLES / benchmark.stats.stats.mean, 1),
        "instructions_per_sec": None,
        "committed": sum(t.stats.committed for t in dcra.threads)
        + sum(t.stats.committed for t in icount.threads),
    }
    assert sum(t.stats.committed for t in dcra.threads) > 0
    assert sum(t.stats.committed for t in icount.threads) > 0


def test_checkpoint_throughput(benchmark, tmp_path, monkeypatch):
    """Capture/store/restore cost of a warmed 4-thread processor.

    The prefix-sharing win is (warm-up simulation time saved) minus
    (one store + one restore per fork); this benchmark records both
    sides so the trade stays visible across PRs.
    """
    import time

    from repro.harness.checkpoints import CheckpointStore

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    benchmarks_mix = ("gzip", "twolf", "bzip2", "mcf")
    warmed_cycles = 2 * CYCLES  # realistic warm-up length

    def build_and_warm():
        processor = SMTProcessor(SMTConfig(),
                                 [get_profile(b) for b in benchmarks_mix],
                                 make_policy("ICOUNT"), seed=1)
        processor.run(warmed_cycles)
        return processor

    def measure():
        processor = build_and_warm()
        store = CheckpointStore()

        start = time.perf_counter()
        state = processor.capture_state()
        capture_s = time.perf_counter() - start

        start = time.perf_counter()
        store.put("bench-prefix", {"state": state})
        store_s = time.perf_counter() - start

        start = time.perf_counter()
        payload = store.require("bench-prefix")
        fresh = SMTProcessor(SMTConfig(),
                             [get_profile(b) for b in benchmarks_mix],
                             make_policy("ICOUNT"), seed=1)
        fresh.restore_state(payload["state"])
        restore_s = time.perf_counter() - start

        start = time.perf_counter()
        build_and_warm()
        warmup_s = time.perf_counter() - start
        return fresh, capture_s, store_s, restore_s, warmup_s

    fresh, capture_s, store_s, restore_s, warmup_s = benchmark.pedantic(
        measure, rounds=1, iterations=1)
    roundtrip_s = capture_s + store_s + restore_s
    _MEASUREMENTS["checkpoint round-trip"] = {
        "benchmarks": list(benchmarks_mix),
        "policy": "ICOUNT",
        "warmed_cycles": warmed_cycles,
        "capture_s": round(capture_s, 4),
        "store_s": round(store_s, 4),
        "restore_s": round(restore_s, 4),
        "equivalent_warmup_s": round(warmup_s, 4),
        "breakeven_ratio": round(roundtrip_s / warmup_s, 3),
    }
    print(f"\ncheckpoint round-trip ({warmed_cycles}-cycle warm 4-thread "
          f"state): capture {capture_s * 1e3:.1f} ms, "
          f"store {store_s * 1e3:.1f} ms, restore {restore_s * 1e3:.1f} ms "
          f"(= {100 * roundtrip_s / warmup_s:.1f}% of simulating the "
          f"warm-up)")
    assert sum(t.stats.committed for t in fresh.threads) > 0
    # Restoring must beat re-simulating the warm-up; allow timing noise
    # on shared CI hardware while still catching a real regression.
    assert roundtrip_s < warmup_s or roundtrip_s - warmup_s < 0.05


def test_broker_service_throughput(benchmark, tmp_path, monkeypatch):
    """Broker submit-to-result latency and multi-client sweep throughput.

    Spins up an in-process broker with two loopback workers and records
    three numbers in BENCH_speed.json: the cold submit-to-result
    round-trip (one simulation through the full queue/dispatch path),
    the warm round-trip (the broker answers from the result store —
    no simulation), and the aggregate jobs/s of two concurrent clients
    sweeping through the shared worker pool.  ``jobs_per_sec`` is gated
    by scripts/perf_gate.py like the other throughput entries.
    """
    import threading
    import time

    from repro.harness.broker import Broker, BrokerClient
    from repro.harness.engine import SimJob, run_jobs
    from repro.harness.executors import BrokerExecutor
    from repro.harness.results import result_store

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    result_store.clear()
    clients = 2
    jobs_per_client = 4
    cycles, warmup = 1_000, 250

    def roundtrip(client, submission_id, job):
        route = client.open_route(submission_id)
        try:
            start = time.perf_counter()
            client.submit(submission_id, "job", job=job)
            while True:
                message = route.get(timeout=120.0)
                if message[0] == "result":
                    elapsed = time.perf_counter() - start
                    _, _, ok, value, source = message
                    assert ok, value
                    return elapsed, source
                if message[0] in ("rejected", "connection-lost"):
                    raise RuntimeError(f"broker bench failed: {message}")
        finally:
            client.close_route(submission_id)

    def measure():
        with Broker(spawn_workers=2, durable=False) as broker:
            client = BrokerClient(broker.address, timeout=120.0)
            probe = SimJob(("gzip",), "ICOUNT", None, cycles, warmup, seed=99)
            cold_s, cold_source = roundtrip(client, "bench-cold", probe)
            warm_s, warm_source = roundtrip(client, "bench-warm", probe)
            client.close()
            assert cold_source == "worker" and warm_source == "store"

            sweeps = [None] * clients
            def sweep(index):
                jobs = [SimJob(("gzip", "twolf"), "ICOUNT", None, cycles,
                               warmup, seed=1000 + 100 * index + j)
                        for j in range(jobs_per_client)]
                with BrokerExecutor(broker.address,
                                    timeout=120.0) as executor:
                    sweeps[index] = run_jobs(jobs, 2, executor, reuse="off")
            threads = [threading.Thread(target=sweep, args=(i,))
                       for i in range(clients)]
            start = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            sweep_s = time.perf_counter() - start
        return sweeps, cold_s, warm_s, sweep_s

    sweeps, cold_s, warm_s, sweep_s = benchmark.pedantic(
        measure, rounds=1, iterations=1)
    assert all(len(results) == jobs_per_client for results in sweeps)
    total_jobs = clients * jobs_per_client
    _MEASUREMENTS["broker service"] = {
        "benchmarks": ["gzip", "twolf"],
        "policy": "ICOUNT",
        "clients": clients,
        "jobs": total_jobs,
        "cycles": cycles,
        "warmup": warmup,
        "cold_submit_to_result_s": round(cold_s, 4),
        "warm_submit_to_result_s": round(warm_s, 4),
        "jobs_per_sec": round(total_jobs / sweep_s, 2),
    }
    print(f"\nbroker service: cold round-trip {cold_s * 1e3:.0f} ms, "
          f"warm (store-served) {warm_s * 1e3:.1f} ms, "
          f"{clients} clients x {jobs_per_client} jobs: "
          f"{total_jobs / sweep_s:.2f} jobs/s")
    # The warm path never simulates, so it must beat the cold path.
    assert warm_s < cold_s


def test_prefix_sharing_sweep_speedup(benchmark, tmp_path, monkeypatch):
    """A 4-policy sweep with one shared warm-up prefix vs plain runs.

    Times the same policy comparison twice — every policy self-warming
    vs all policies forking from one checkpointed warm-up — and records
    the measured saving; results must agree policy-by-policy for the
    lead (self-warmed) policy.
    """
    import dataclasses
    import time

    from repro.harness.checkpoints import checkpoint_store
    from repro.harness.results import result_store
    from repro.harness.scenario import Scenario, run_scenario

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    result_store.clear()
    checkpoint_store.clear()
    scenario = Scenario(
        name="bench-prefix-sharing", workloads=("gzip+twolf",),
        policies=("ICOUNT", "FLUSH++", "SRA", "DCRA"),
        cycles=CYCLES, warmup=CYCLES, seed=1)

    def measure():
        start = time.perf_counter()
        plain = run_scenario(scenario, reuse="off")
        plain_s = time.perf_counter() - start

        result_store.clear()
        start = time.perf_counter()
        shared = run_scenario(
            dataclasses.replace(scenario, shared_warmup=True), reuse="off")
        shared_s = time.perf_counter() - start
        return plain, shared, plain_s, shared_s

    plain, shared, plain_s, shared_s = benchmark.pedantic(
        measure, rounds=1, iterations=1)
    saving_pct = 100.0 * (1.0 - shared_s / plain_s)
    stats = shared.checkpoint_stats
    # Simulated-cycle accounting: plain self-warms every job; shared
    # simulates each prefix's warm-up once and only suffixes fan out.
    plain_cycles = stats["jobs"] * (CYCLES + CYCLES)
    shared_cycles = stats["prefixes"] * CYCLES + stats["jobs"] * CYCLES
    _MEASUREMENTS["prefix-sharing sweep"] = {
        "benchmarks": ["gzip", "twolf"],
        "policy": "ICOUNT+FLUSH+++SRA+DCRA",
        "cycles": CYCLES,
        "warmup": CYCLES,
        "plain_s": round(plain_s, 4),
        "shared_s": round(shared_s, 4),
        "saving_pct": round(saving_pct, 2),
        "plain_simulated_cycles": plain_cycles,
        "shared_simulated_cycles": shared_cycles,
        "cycles_saving_pct": round(100.0 * (1 - shared_cycles / plain_cycles),
                                   2),
        "checkpoint": stats,
    }
    print(f"\nprefix-sharing sweep (4 policies, {CYCLES}-cycle warm-up): "
          f"plain {plain_s:.2f} s, shared {shared_s:.2f} s "
          f"({saving_pct:+.1f}%)")
    assert shared.checkpoint_stats == {"prefixes": 1, "jobs": 4, "hits": 0,
                                       "computed": 1}
    # The lead policy self-warms either way: identical result.
    assert plain.results[0] == shared.results[0]
