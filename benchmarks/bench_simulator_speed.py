"""Simulator performance: simulated instructions and cycles per second.

Not a paper artefact, but the number every user of a pure-Python cycle
simulator asks first.  Measures single-thread ILP, single-thread MEM and
a 4-thread mixed configuration.

Besides the human-readable console lines, the run writes a
machine-readable ``BENCH_speed.json`` (override the path with
``$BENCH_SPEED_JSON``) mapping each configuration to its simulated
cycles/s and committed-instruction count, so the performance trajectory
can be tracked across PRs (CI uploads it as a workflow artifact).
"""

import json
import os
import platform
from pathlib import Path

import pytest

from repro.pipeline.config import SMTConfig
from repro.pipeline.processor import SMTProcessor
from repro.policies.registry import make_policy
from repro.trace.profiles import get_profile

CYCLES = 4_000

#: Per-configuration measurements accumulated by the tests and dumped to
#: ``BENCH_speed.json`` when the module's tests finish.
_MEASUREMENTS = {}


@pytest.fixture(scope="module", autouse=True)
def _dump_bench_json():
    """Write the collected measurements after the module's tests ran."""
    yield
    if not _MEASUREMENTS:
        return
    path = Path(os.environ.get("BENCH_SPEED_JSON", "BENCH_speed.json"))
    payload = {
        "cycles_per_run": CYCLES,
        "python": platform.python_version(),
        "configurations": _MEASUREMENTS,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def run_config(benchmarks, policy="ICOUNT"):
    processor = SMTProcessor(SMTConfig(),
                             [get_profile(b) for b in benchmarks],
                             make_policy(policy), seed=1)
    processor.run(CYCLES)
    return processor


@pytest.mark.parametrize("benchmarks,label", [
    (("gzip",), "1-thread ILP"),
    (("mcf",), "1-thread MEM"),
    (("gzip", "twolf", "bzip2", "mcf"), "4-thread MIX"),
])
def test_simulation_speed(benchmark, benchmarks, label):
    processor = benchmark.pedantic(run_config, args=(benchmarks,),
                                   rounds=1, iterations=1)
    committed = sum(t.stats.committed for t in processor.threads)
    cycles_per_sec = CYCLES / benchmark.stats.stats.mean
    _MEASUREMENTS[label] = {
        "benchmarks": list(benchmarks),
        "policy": "ICOUNT",
        "cycles_per_sec": round(cycles_per_sec, 1),
        "instructions_per_sec": round(committed / benchmark.stats.stats.mean,
                                      1),
        "committed": committed,
    }
    print(f"\n{label}: {CYCLES} cycles, {committed} instructions committed, "
          f"{cycles_per_sec:,.0f} simulated cycles/s")
    assert committed > 0


def test_interval_mode_overhead(benchmark):
    """Chunked runs must cost <5% over monolithic at 5000-cycle intervals.

    Measures the same 4-thread MIX configuration both ways (min of three
    timings each, interleaved to share cache/frequency state) and records
    the overhead percentage in BENCH_speed.json — the acceptance number
    for the interval refactor.
    """
    import time

    interval_cycles = 5_000
    total_cycles = 20_000
    benchmarks_mix = ("gzip", "twolf", "bzip2", "mcf")

    def build():
        return SMTProcessor(SMTConfig(),
                            [get_profile(b) for b in benchmarks_mix],
                            make_policy("ICOUNT"), seed=1)

    def measure():
        mono_times, interval_times = [], []
        for _ in range(3):
            processor = build()
            start = time.perf_counter()
            processor.run(total_cycles)
            mono_times.append(time.perf_counter() - start)
            mono = processor

            processor = build()
            start = time.perf_counter()
            snapshots = list(processor.run_intervals(
                interval_cycles, total_cycles=total_cycles))
            interval_times.append(time.perf_counter() - start)
            chunked = processor
        return mono, chunked, snapshots, min(mono_times), min(interval_times)

    mono, chunked, snapshots, mono_time, interval_time = benchmark.pedantic(
        measure, rounds=1, iterations=1)
    overhead_pct = 100.0 * (interval_time / mono_time - 1.0)
    _MEASUREMENTS["interval-mode overhead"] = {
        "benchmarks": list(benchmarks_mix),
        "policy": "ICOUNT",
        "interval_cycles": interval_cycles,
        "total_cycles": total_cycles,
        "monolithic_s": round(mono_time, 4),
        "interval_s": round(interval_time, 4),
        "overhead_pct": round(overhead_pct, 2),
    }
    print(f"\ninterval mode ({interval_cycles}-cycle chunks over "
          f"{total_cycles} cycles): {overhead_pct:+.2f}% vs monolithic")
    # Chunking must not change what was simulated...
    assert [t.stats.committed for t in mono.threads] \
        == [t.stats.committed for t in chunked.threads]
    assert len(snapshots) == total_cycles // interval_cycles
    # ...and the acceptance ceiling is 5%; allow measurement noise on
    # shared CI hardware while still catching a real regression.
    assert overhead_pct < 5.0 or interval_time - mono_time < 0.05


def test_dcra_overhead_vs_icount(benchmark):
    """DCRA's per-cycle classification must not dominate simulation time."""

    def run_both():
        icount = run_config(("gzip", "twolf"), "ICOUNT")
        dcra = run_config(("gzip", "twolf"), "DCRA")
        return icount, dcra

    icount, dcra = benchmark.pedantic(run_both, rounds=1, iterations=1)
    _MEASUREMENTS["2-thread ICOUNT+DCRA pair"] = {
        "benchmarks": ["gzip", "twolf"],
        "policy": "ICOUNT+DCRA",
        "cycles_per_sec": round(2 * CYCLES / benchmark.stats.stats.mean, 1),
        "instructions_per_sec": None,
        "committed": sum(t.stats.committed for t in dcra.threads)
        + sum(t.stats.committed for t in icount.threads),
    }
    assert sum(t.stats.committed for t in dcra.threads) > 0
    assert sum(t.stats.committed for t in icount.threads) > 0


def test_checkpoint_throughput(benchmark, tmp_path, monkeypatch):
    """Capture/store/restore cost of a warmed 4-thread processor.

    The prefix-sharing win is (warm-up simulation time saved) minus
    (one store + one restore per fork); this benchmark records both
    sides so the trade stays visible across PRs.
    """
    import time

    from repro.harness.checkpoints import CheckpointStore

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    benchmarks_mix = ("gzip", "twolf", "bzip2", "mcf")
    warmed_cycles = 2 * CYCLES  # realistic warm-up length

    def build_and_warm():
        processor = SMTProcessor(SMTConfig(),
                                 [get_profile(b) for b in benchmarks_mix],
                                 make_policy("ICOUNT"), seed=1)
        processor.run(warmed_cycles)
        return processor

    def measure():
        processor = build_and_warm()
        store = CheckpointStore()

        start = time.perf_counter()
        state = processor.capture_state()
        capture_s = time.perf_counter() - start

        start = time.perf_counter()
        store.put("bench-prefix", {"state": state})
        store_s = time.perf_counter() - start

        start = time.perf_counter()
        payload = store.require("bench-prefix")
        fresh = SMTProcessor(SMTConfig(),
                             [get_profile(b) for b in benchmarks_mix],
                             make_policy("ICOUNT"), seed=1)
        fresh.restore_state(payload["state"])
        restore_s = time.perf_counter() - start

        start = time.perf_counter()
        build_and_warm()
        warmup_s = time.perf_counter() - start
        return fresh, capture_s, store_s, restore_s, warmup_s

    fresh, capture_s, store_s, restore_s, warmup_s = benchmark.pedantic(
        measure, rounds=1, iterations=1)
    roundtrip_s = capture_s + store_s + restore_s
    _MEASUREMENTS["checkpoint round-trip"] = {
        "benchmarks": list(benchmarks_mix),
        "policy": "ICOUNT",
        "warmed_cycles": warmed_cycles,
        "capture_s": round(capture_s, 4),
        "store_s": round(store_s, 4),
        "restore_s": round(restore_s, 4),
        "equivalent_warmup_s": round(warmup_s, 4),
        "breakeven_ratio": round(roundtrip_s / warmup_s, 3),
    }
    print(f"\ncheckpoint round-trip ({warmed_cycles}-cycle warm 4-thread "
          f"state): capture {capture_s * 1e3:.1f} ms, "
          f"store {store_s * 1e3:.1f} ms, restore {restore_s * 1e3:.1f} ms "
          f"(= {100 * roundtrip_s / warmup_s:.1f}% of simulating the "
          f"warm-up)")
    assert sum(t.stats.committed for t in fresh.threads) > 0
    # Restoring must beat re-simulating the warm-up; allow timing noise
    # on shared CI hardware while still catching a real regression.
    assert roundtrip_s < warmup_s or roundtrip_s - warmup_s < 0.05


def test_prefix_sharing_sweep_speedup(benchmark, tmp_path, monkeypatch):
    """A 4-policy sweep with one shared warm-up prefix vs plain runs.

    Times the same policy comparison twice — every policy self-warming
    vs all policies forking from one checkpointed warm-up — and records
    the measured saving; results must agree policy-by-policy for the
    lead (self-warmed) policy.
    """
    import dataclasses
    import time

    from repro.harness.checkpoints import checkpoint_store
    from repro.harness.results import result_store
    from repro.harness.scenario import Scenario, run_scenario

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    result_store.clear()
    checkpoint_store.clear()
    scenario = Scenario(
        name="bench-prefix-sharing", workloads=("gzip+twolf",),
        policies=("ICOUNT", "FLUSH++", "SRA", "DCRA"),
        cycles=CYCLES, warmup=CYCLES, seed=1)

    def measure():
        start = time.perf_counter()
        plain = run_scenario(scenario, reuse="off")
        plain_s = time.perf_counter() - start

        result_store.clear()
        start = time.perf_counter()
        shared = run_scenario(
            dataclasses.replace(scenario, shared_warmup=True), reuse="off")
        shared_s = time.perf_counter() - start
        return plain, shared, plain_s, shared_s

    plain, shared, plain_s, shared_s = benchmark.pedantic(
        measure, rounds=1, iterations=1)
    saving_pct = 100.0 * (1.0 - shared_s / plain_s)
    stats = shared.checkpoint_stats
    # Simulated-cycle accounting: plain self-warms every job; shared
    # simulates each prefix's warm-up once and only suffixes fan out.
    plain_cycles = stats["jobs"] * (CYCLES + CYCLES)
    shared_cycles = stats["prefixes"] * CYCLES + stats["jobs"] * CYCLES
    _MEASUREMENTS["prefix-sharing sweep"] = {
        "benchmarks": ["gzip", "twolf"],
        "policy": "ICOUNT+FLUSH+++SRA+DCRA",
        "cycles": CYCLES,
        "warmup": CYCLES,
        "plain_s": round(plain_s, 4),
        "shared_s": round(shared_s, 4),
        "saving_pct": round(saving_pct, 2),
        "plain_simulated_cycles": plain_cycles,
        "shared_simulated_cycles": shared_cycles,
        "cycles_saving_pct": round(100.0 * (1 - shared_cycles / plain_cycles),
                                   2),
        "checkpoint": stats,
    }
    print(f"\nprefix-sharing sweep (4 policies, {CYCLES}-cycle warm-up): "
          f"plain {plain_s:.2f} s, shared {shared_s:.2f} s "
          f"({saving_pct:+.1f}%)")
    assert shared.checkpoint_stats == {"prefixes": 1, "jobs": 4, "hits": 0,
                                       "computed": 1}
    # The lead policy self-warms either way: identical result.
    assert plain.results[0] == shared.results[0]
