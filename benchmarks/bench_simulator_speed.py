"""Simulator performance: simulated instructions and cycles per second.

Not a paper artefact, but the number every user of a pure-Python cycle
simulator asks first.  Measures single-thread ILP, single-thread MEM and
a 4-thread mixed configuration.
"""

import pytest

from repro.pipeline.config import SMTConfig
from repro.pipeline.processor import SMTProcessor
from repro.policies.registry import make_policy
from repro.trace.profiles import get_profile

CYCLES = 4_000


def run_config(benchmarks, policy="ICOUNT"):
    processor = SMTProcessor(SMTConfig(),
                             [get_profile(b) for b in benchmarks],
                             make_policy(policy), seed=1)
    processor.run(CYCLES)
    return processor


@pytest.mark.parametrize("benchmarks,label", [
    (("gzip",), "1-thread ILP"),
    (("mcf",), "1-thread MEM"),
    (("gzip", "twolf", "bzip2", "mcf"), "4-thread MIX"),
])
def test_simulation_speed(benchmark, benchmarks, label):
    processor = benchmark.pedantic(run_config, args=(benchmarks,),
                                   rounds=1, iterations=1)
    committed = sum(t.stats.committed for t in processor.threads)
    cycles_per_sec = CYCLES / benchmark.stats.stats.mean
    print(f"\n{label}: {CYCLES} cycles, {committed} instructions committed, "
          f"{cycles_per_sec:,.0f} simulated cycles/s")
    assert committed > 0


def test_dcra_overhead_vs_icount(benchmark):
    """DCRA's per-cycle classification must not dominate simulation time."""

    def run_both():
        icount = run_config(("gzip", "twolf"), "ICOUNT")
        dcra = run_config(("gzip", "twolf"), "DCRA")
        return icount, dcra

    icount, dcra = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert sum(t.stats.committed for t in dcra.threads) > 0
    assert sum(t.stats.committed for t in icount.threads) > 0
