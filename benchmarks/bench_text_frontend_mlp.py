"""Section 5.2 text claims — front-end activity and memory parallelism.

Paper claims: FLUSH++ fetches ~108% more instructions than DCRA (every
flush refetches the squashed work), while DCRA overlaps more L2 misses
(≈+18% memory parallelism on average) by letting the missing thread keep
a bounded resource share.
"""

from _budget import BENCH_CYCLES, BENCH_WARMUP

from repro.harness.experiments import format_text52, text52_frontend_and_mlp

CELLS = ((2, "MIX"), (2, "MEM"))


def test_text52_regeneration(benchmark):
    rows = benchmark.pedantic(
        text52_frontend_and_mlp,
        kwargs=dict(cells=CELLS, cycles=BENCH_CYCLES, warmup=BENCH_WARMUP),
        rounds=1, iterations=1,
    )
    print("\nSection 5.2 (fetches per committed instruction, L2 overlap):")
    print(format_text52(rows))

    by_key = {(r.wtype, r.num_threads, r.policy): r for r in rows}
    for wtype, threads in (("MIX", 2), ("MEM", 2)):
        flush = by_key[(wtype, threads, "FLUSH++")]
        dcra = by_key[(wtype, threads, "DCRA")]
        # FLUSH++ pays more front-end work per useful instruction.
        assert flush.fetched_per_commit >= dcra.fetched_per_commit * 0.95, \
            (wtype, threads)
