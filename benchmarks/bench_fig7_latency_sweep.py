"""Figure 7 — sensitivity to main-memory latency.

Paper claims: ICOUNT collapses as memory latency grows (it ignores
memory behaviour entirely) while DCRA and SRA remain robust, DCRA
keeping an edge by adapting its sharing factor (C = 1/T at 100 cycles,
1/(T+4) at 300, 0 for queues at 500).
"""

from _budget import BENCH_CYCLES, BENCH_WARMUP

from repro.harness.experiments import figure7_latency_sweep, format_sweep

LATENCIES = ((100, 10), (300, 20), (500, 25))


def test_figure7_regeneration(benchmark, bench_budget):
    cycles, warmup, cells = bench_budget
    rows = benchmark.pedantic(
        figure7_latency_sweep,
        kwargs=dict(latencies=LATENCIES, cells=cells,
                    cycles=cycles, warmup=warmup),
        rounds=1, iterations=1,
    )
    print("\nFigure 7 (DCRA Hmean improvement vs memory latency):")
    print(format_sweep(rows, "latency"))

    by_baseline = {}
    for row in rows:
        by_baseline.setdefault(row.baseline, {})[row.parameter] = \
            row.hmean_improvement_pct
    # ICOUNT's deficit widens (or at least persists) with latency.
    icount = by_baseline["ICOUNT"]
    assert icount[500] >= icount[100] - 10.0
    assert icount[500] > 0
