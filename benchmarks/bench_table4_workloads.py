"""Table 4 — workload construction and trace-generation throughput.

Table 4 itself is a static definition (verified against the paper in the
unit tests); the benchmark measures the cost of standing up all 36
workloads and generating their opening instruction window, which bounds
how much of every simulation is spent in the synthetic front end.
"""

from repro.trace.generator import SyntheticTraceGenerator
from repro.trace.workloads import all_workloads

#: Instructions generated per thread when standing a workload up.
WINDOW = 2_000


def build_all_workloads():
    total_ops = 0
    for workload in all_workloads():
        for tid, profile in enumerate(workload.profiles()):
            generator = SyntheticTraceGenerator(profile, seed=1, tid=tid)
            for _ in range(WINDOW):
                generator.next_op()
            total_ops += WINDOW
    return total_ops


def test_table4_workload_construction(benchmark):
    total = benchmark.pedantic(build_all_workloads, rounds=1, iterations=1)
    # 36 workloads x threads x WINDOW instructions.
    expected = sum(w.num_threads for w in all_workloads()) * WINDOW
    assert total == expected
    print(f"\nTable 4: built 36 workloads, generated {total} instructions")
    print("Workload cells:")
    for workload in all_workloads():
        if workload.group == 1:
            print(f"  {workload.wtype}{workload.num_threads}: "
                  f"{'+'.join(workload.benchmarks)} (group 1 of 4)")
