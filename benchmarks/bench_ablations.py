"""Ablation benchmarks for DCRA's design choices (DESIGN.md section 5).

Three knobs the paper discusses are swept on a mixed workload:

* the sharing factor C (Section 3.2 / 5.3 variants);
* the activity window Y (paper: 256 best of 64..8192);
* the slow-phase trigger (pending L1D misses — the paper's choice —
  vs pending L2 misses);
* fetch-only enforcement vs fetch+rename enforcement.
"""

from _budget import BENCH_CYCLES, BENCH_WARMUP

from repro.core.dcra import DcraConfig
from repro.harness.runner import evaluate_workload
from repro.trace.workloads import make_workload

WORKLOAD = make_workload(2, "MIX", 1)


def _hmean_for(config: DcraConfig) -> float:
    evaluation = evaluate_workload(
        WORKLOAD, [("DCRA", {"config": config})],
        cycles=BENCH_CYCLES, warmup=BENCH_WARMUP,
    )["DCRA"]
    return evaluation.hmean


def test_ablation_sharing_factor(benchmark):
    factors = ("inverse_active", "inverse_active_plus4", "zero")

    def sweep():
        return {
            factor: _hmean_for(DcraConfig(iq_sharing_factor=factor,
                                          reg_sharing_factor=factor))
            for factor in factors
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nAblation: sharing factor (MIX2.g1 Hmean)")
    for factor, hmean in results.items():
        print(f"  C = {factor:22s} {hmean:.3f}")
    assert all(hmean > 0 for hmean in results.values())


def test_ablation_activity_window(benchmark):
    windows = (64, 256, 2048)

    def sweep():
        return {w: _hmean_for(DcraConfig(activity_window=w))
                for w in windows}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nAblation: activity window Y (MIX2.g1 Hmean, paper best: 256)")
    for window, hmean in results.items():
        print(f"  Y = {window:5d} {hmean:.3f}")
    assert all(hmean > 0 for hmean in results.values())


def test_ablation_slow_trigger(benchmark):
    def sweep():
        return {
            trigger: _hmean_for(DcraConfig(slow_trigger=trigger))
            for trigger in ("l1d", "l2")
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nAblation: slow trigger (MIX2.g1 Hmean, paper uses L1D)")
    for trigger, hmean in results.items():
        print(f"  trigger = {trigger:4s} {hmean:.3f}")
    assert all(hmean > 0 for hmean in results.values())


def test_ablation_enforcement_point(benchmark):
    def sweep():
        return {
            "fetch+rename": _hmean_for(DcraConfig(enforce_at_rename=True)),
            "fetch-only": _hmean_for(DcraConfig(enforce_at_rename=False)),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nAblation: enforcement point (MIX2.g1 Hmean)")
    for mode, hmean in results.items():
        print(f"  {mode:12s} {hmean:.3f}")
    assert all(hmean > 0 for hmean in results.values())
