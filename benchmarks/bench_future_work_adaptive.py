"""Future-work extension: the degenerate-case guard on MEM workloads.

The paper's Section 5.2/6 promises future work on detecting threads
(mcf) for which borrowed resources buy nothing.  ``DCRA-ADAPT``
implements that with per-thread A/B probing; this benchmark compares it
against plain DCRA on the pure-MEM cells where the paper says the
degenerate case costs DCRA its edge over FLUSH++.
"""

from _budget import BENCH_CYCLES, BENCH_WARMUP

from repro.harness.runner import evaluate_workload
from repro.trace.workloads import workload_groups

CELLS = ((2, "MEM"), (4, "MEM"))


def compare_on_mem_cells():
    rows = []
    for num_threads, wtype in CELLS:
        sums = {"DCRA": [0.0, 0.0], "DCRA-ADAPT": [0.0, 0.0]}
        for workload in workload_groups(num_threads, wtype):
            evaluations = evaluate_workload(
                workload, ["DCRA", "DCRA-ADAPT"],
                cycles=BENCH_CYCLES, warmup=BENCH_WARMUP)
            for name, evaluation in evaluations.items():
                sums[name][0] += evaluation.throughput / 4
                sums[name][1] += evaluation.hmean / 4
        rows.append((f"{wtype}{num_threads}", sums))
    return rows


def test_adaptive_guard_on_mem(benchmark):
    rows = benchmark.pedantic(compare_on_mem_cells, rounds=1, iterations=1)
    print("\nFuture-work guard (DCRA vs DCRA-ADAPT on MEM cells):")
    print(f"{'cell':6s} {'policy':12s} {'IPC':>6s} {'Hmean':>7s}")
    for cell, sums in rows:
        for name, (throughput, hmean) in sums.items():
            print(f"{cell:6s} {name:12s} {throughput:6.2f} {hmean:7.3f}")
    # The guard must at least not break DCRA badly on its home turf.
    for cell, sums in rows:
        assert sums["DCRA-ADAPT"][1] > sums["DCRA"][1] * 0.8, cell
